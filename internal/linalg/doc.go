// Package linalg provides the small dense complex linear-algebra kernel the
// rest of the repository builds on: complex vectors, matrices, and a
// Hermitian eigendecomposition.
//
// The standard library has no linear algebra, and MUSIC (internal/music)
// needs eigenvectors of small Hermitian covariance matrices, so this package
// implements a cyclic Jacobi eigensolver from scratch. Sizes are small
// (antenna counts, subcarrier counts), so clarity is favoured over blocking
// or SIMD tricks.
//
// Hot-path callers avoid per-call allocation through the workspace surface:
// EigWorkspace owns the Jacobi solver's working matrices and result storage
// and may be reused across solves of any size (EigHermitian is a transient-
// workspace wrapper around it), and Matrix.Reuse/CopyFrom/SetIdentity plus
// MulVecInto let covariance and spectrum code write into caller-owned
// buffers. Workspace results are overwritten by the next solve on that
// workspace; callers needing two decompositions at once copy or use two
// workspaces.
package linalg
