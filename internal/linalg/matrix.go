package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	rows, cols int
	data       []complex128
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func MatrixFromRows(rows [][]complex128) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("matrix from 0 rows: %w", ErrDimensionMismatch)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d cols, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Reuse reshapes m to a zeroed rows×cols matrix in place, growing the
// backing storage only when needed. The zero value of Matrix is valid to
// Reuse, so scratch holders can embed a Matrix by value and let the first
// call size it.
func (m *Matrix) Reuse(rows, cols int) {
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]complex128, n)
	}
	m.data = m.data[:n]
	for i := range m.data {
		m.data[i] = 0
	}
	m.rows, m.cols = rows, cols
}

// CopyFrom overwrites m's contents with b's. Shapes must match.
func (m *Matrix) CopyFrom(b *Matrix) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("copy %dx%d into %dx%d: %w", b.rows, b.cols, m.rows, m.cols, ErrDimensionMismatch)
	}
	copy(m.data, b.data)
	return nil
}

// SetIdentity rewrites m as the identity (ones on the main diagonal, zeros
// elsewhere) without reallocating.
func (m *Matrix) SetIdentity() {
	for i := range m.data {
		m.data[i] = 0
	}
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("add %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("sub %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out, nil
}

// Scale returns s * m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := NewMatrix(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("mul %dx%d and %dx%d: %w", m.rows, m.cols, b.rows, b.cols, ErrDimensionMismatch)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("mulvec %dx%d and %d: %w", m.rows, m.cols, len(v), ErrDimensionMismatch)
	}
	out := make(Vector, m.rows)
	if err := m.MulVecInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto is MulVec writing into a caller-owned dst of length Rows. dst
// and v must not alias.
func (m *Matrix) MulVecInto(dst, v Vector) error {
	if m.cols != len(v) {
		return fmt.Errorf("mulvec %dx%d and %d: %w", m.rows, m.cols, len(v), ErrDimensionMismatch)
	}
	if len(dst) != m.rows {
		return fmt.Errorf("mulvec dst %d for %d rows: %w", len(dst), m.rows, ErrDimensionMismatch)
	}
	for i := 0; i < m.rows; i++ {
		var sum complex128
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			sum += a * v[j]
		}
		dst[i] = sum
	}
	return nil
}

// ConjTranspose returns the Hermitian transpose mᴴ.
func (m *Matrix) ConjTranspose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Trace returns the sum of diagonal elements. The matrix must be square.
func (m *Matrix) Trace() (complex128, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("trace of %dx%d: %w", m.rows, m.cols, ErrDimensionMismatch)
	}
	var sum complex128
	for i := 0; i < m.rows; i++ {
		sum += m.At(i, i)
	}
	return sum, nil
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, x := range m.data {
		re, im := real(x), imag(x)
		sum += re*re + im*im
	}
	return math.Sqrt(sum)
}

// IsHermitian reports whether m equals mᴴ within tolerance tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i; j < m.cols; j++ {
			d := m.At(i, j) - cmplx.Conj(m.At(j, i))
			if cmplx.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%7.4f%+7.4fi", real(m.At(i, j)), imag(m.At(i, j)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
