// Package geom provides the 2-D geometry primitives the ray tracer is built
// on: points, segments, mirror images (for the image method of specular
// reflection), point-segment distances, and intersection tests.
//
// Rooms are modelled in the horizontal plane; antenna height differences are
// folded into path lengths by the propagation package where needed.
package geom
