package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Fatalf("cross = %v", got)
	}
}

func TestNormDistAngle(t *testing.T) {
	p := Point{3, 4}
	if math.Abs(p.Norm()-5) > eps {
		t.Fatalf("norm = %v", p.Norm())
	}
	if math.Abs(p.Dist(Point{0, 0})-5) > eps {
		t.Fatalf("dist = %v", p.Dist(Point{}))
	}
	if math.Abs((Point{0, 1}).Angle()-math.Pi/2) > eps {
		t.Fatalf("angle = %v", (Point{0, 1}).Angle())
	}
	if math.Abs((Point{-1, 0}).Angle()-math.Pi) > eps {
		t.Fatalf("angle = %v", (Point{-1, 0}).Angle())
	}
}

func TestSegmentLengthMidpointAt(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if math.Abs(s.Length()-4) > eps {
		t.Fatalf("length = %v", s.Length())
	}
	if s.Midpoint() != (Point{2, 0}) {
		t.Fatalf("midpoint = %v", s.Midpoint())
	}
	if s.PointAt(0.25) != (Point{1, 0}) {
		t.Fatalf("pointat = %v", s.PointAt(0.25))
	}
}

func TestClosestPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	tests := []struct {
		p     Point
		wantC Point
		wantT float64
	}{
		{Point{5, 3}, Point{5, 0}, 0.5},
		{Point{-2, 1}, Point{0, 0}, 0},   // clamped to A
		{Point{12, -1}, Point{10, 0}, 1}, // clamped to B
		{Point{0, 0}, Point{0, 0}, 0},    // on endpoint
		{Point{7, 0}, Point{7, 0}, 0.7},  // on segment
	}
	for _, tc := range tests {
		c, tt := s.ClosestPoint(tc.p)
		if c.Dist(tc.wantC) > eps || math.Abs(tt-tc.wantT) > eps {
			t.Fatalf("closest(%v) = %v,%v want %v,%v", tc.p, c, tt, tc.wantC, tc.wantT)
		}
	}
	// Degenerate segment.
	d := Segment{Point{1, 1}, Point{1, 1}}
	c, tt := d.ClosestPoint(Point{5, 5})
	if c != (Point{1, 1}) || tt != 0 {
		t.Fatalf("degenerate closest = %v,%v", c, tt)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if d := s.DistToPoint(Point{5, 3}); math.Abs(d-3) > eps {
		t.Fatalf("dist = %v", d)
	}
	if d := s.DistToPoint(Point{13, 4}); math.Abs(d-5) > eps {
		t.Fatalf("dist past end = %v", d)
	}
}

func TestMirror(t *testing.T) {
	wall := Segment{Point{0, 2}, Point{10, 2}} // horizontal line y=2
	img := wall.Mirror(Point{3, 0})
	if img.Dist(Point{3, 4}) > eps {
		t.Fatalf("mirror = %v, want (3,4)", img)
	}
	// Point on the line maps to itself.
	on := wall.Mirror(Point{5, 2})
	if on.Dist(Point{5, 2}) > eps {
		t.Fatalf("mirror on line = %v", on)
	}
	// Degenerate wall returns the point unchanged.
	deg := Segment{Point{1, 1}, Point{1, 1}}
	if deg.Mirror(Point{4, 5}) != (Point{4, 5}) {
		t.Fatal("degenerate mirror changed point")
	}
}

func TestMirrorInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		wall := Segment{
			Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5},
			Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5},
		}
		if wall.Length() < 1e-6 {
			continue
		}
		p := Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		back := wall.Mirror(wall.Mirror(p))
		if back.Dist(p) > 1e-7 {
			t.Fatalf("mirror not involutive: %v -> %v", p, back)
		}
	}
}

func TestMirrorPreservesDistanceToLine(t *testing.T) {
	wall := Segment{Point{0, 0}, Point{1, 1}}
	p := Point{2, 0}
	img := wall.Mirror(p)
	// Distances to the infinite line must match.
	dP := math.Abs(wall.B.Sub(wall.A).Cross(p.Sub(wall.A))) / wall.Length()
	dI := math.Abs(wall.B.Sub(wall.A).Cross(img.Sub(wall.A))) / wall.Length()
	if math.Abs(dP-dI) > eps {
		t.Fatalf("mirror distance %v vs %v", dP, dI)
	}
}

func TestIntersect(t *testing.T) {
	a := Segment{Point{0, 0}, Point{4, 4}}
	b := Segment{Point{0, 4}, Point{4, 0}}
	p, ok := a.Intersect(b)
	if !ok || p.Dist(Point{2, 2}) > eps {
		t.Fatalf("intersect = %v %v", p, ok)
	}
	// Non-intersecting.
	c := Segment{Point{10, 10}, Point{11, 11}}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint segments intersect")
	}
	// Parallel.
	d := Segment{Point{0, 1}, Point{4, 5}}
	if _, ok := a.Intersect(d); ok {
		t.Fatal("parallel segments intersect")
	}
	// Touching at endpoint counts.
	e := Segment{Point{4, 4}, Point{8, 0}}
	if _, ok := a.Intersect(e); !ok {
		t.Fatal("endpoint touch not detected")
	}
}

func TestLineIntersect(t *testing.T) {
	a := Segment{Point{0, 0}, Point{1, 0}}
	b := Segment{Point{5, -1}, Point{5, 1}}
	p, tt, ok := a.LineIntersect(b)
	if !ok || p.Dist(Point{5, 0}) > eps || math.Abs(tt-5) > eps {
		t.Fatalf("line intersect = %v %v %v", p, tt, ok)
	}
	// Parallel lines.
	c := Segment{Point{0, 1}, Point{1, 1}}
	if _, _, ok := a.LineIntersect(c); ok {
		t.Fatal("parallel line intersect")
	}
}

func TestContains(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if !s.Contains(Point{5, 0.001}, 0.01) {
		t.Fatal("near point not contained")
	}
	if s.Contains(Point{5, 1}, 0.01) {
		t.Fatal("far point contained")
	}
}

func TestPolyline(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 0}, {3, 4}}
	if math.Abs(pl.Length()-7) > eps {
		t.Fatalf("polyline length = %v", pl.Length())
	}
	segs := pl.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[1].A != (Point{3, 0}) || segs[1].B != (Point{3, 4}) {
		t.Fatalf("segment 1 = %v", segs[1])
	}
	if (Polyline{{1, 1}}).Segments() != nil {
		t.Fatal("single-point polyline should have no segments")
	}
	if (Polyline{}).Length() != 0 {
		t.Fatal("empty polyline length != 0")
	}
}

func TestDegRadConversions(t *testing.T) {
	if math.Abs(DegToRad(180)-math.Pi) > eps {
		t.Fatalf("deg2rad(180) = %v", DegToRad(180))
	}
	if math.Abs(RadToDeg(math.Pi/2)-90) > eps {
		t.Fatalf("rad2deg(pi/2) = %v", RadToDeg(math.Pi/2))
	}
	for _, d := range []float64{-90, -45, 0, 30, 270} {
		if math.Abs(RadToDeg(DegToRad(d))-d) > 1e-9 {
			t.Fatalf("roundtrip %v", d)
		}
	}
}

// Property: triangle inequality for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		a := Point{ax, ay}
		b := Point{bx, by}
		c := Point{cx, cy}
		lhs := a.Dist(c)
		rhs := a.Dist(b) + b.Dist(c)
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the closest point on a segment is never farther than either
// endpoint.
func TestQuickClosestPointOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		s := Segment{
			Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10},
			Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10},
		}
		p := Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		d := s.DistToPoint(p)
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			t.Fatalf("closest point worse than endpoint: %v vs %v/%v", d, p.Dist(s.A), p.Dist(s.B))
		}
		// Also never better than the infinite-line distance.
		if s.Length() > 1e-9 {
			lineD := math.Abs(s.B.Sub(s.A).Cross(p.Sub(s.A))) / s.Length()
			if d < lineD-1e-9 {
				t.Fatalf("segment distance below line distance: %v < %v", d, lineD)
			}
		}
	}
}

// Property: image method — for any wall and points P, Q on the same side,
// the reflected path length |P→X| + |X→Q| via the wall equals |mirror(P)→Q|.
func TestQuickImageMethodPathLength(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	wall := Segment{Point{0, 0}, Point{10, 0}}
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64() * 10, 0.1 + rng.Float64()*5}
		q := Point{rng.Float64() * 10, 0.1 + rng.Float64()*5}
		img := wall.Mirror(p)
		// Bounce point: intersection of img→q with the wall line.
		bounce, _, ok := wall.LineIntersect(Segment{img, q})
		if !ok {
			continue
		}
		got := p.Dist(bounce) + bounce.Dist(q)
		want := img.Dist(q)
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("image path length %v != %v", got, want)
		}
	}
}
