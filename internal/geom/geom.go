package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D point in metres.
type Point struct {
	X, Y float64
}

// Add returns p + q (treating q as a displacement).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Angle returns the direction of the vector p in radians in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// String renders the point for debugging.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// PointAt returns A + t·(B-A); t in [0,1] stays on the segment.
func (s Segment) PointAt(t float64) Point {
	return s.A.Add(s.B.Sub(s.A).Scale(t))
}

// ClosestPoint returns the point on the segment closest to p and the
// parameter t ∈ [0,1] of that point.
func (s Segment) ClosestPoint(p Point) (Point, float64) {
	d := s.B.Sub(s.A)
	len2 := d.Dot(d)
	if len2 == 0 {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / len2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.PointAt(t), t
}

// DistToPoint returns the distance from p to the nearest point of the
// segment.
func (s Segment) DistToPoint(p Point) float64 {
	c, _ := s.ClosestPoint(p)
	return c.Dist(p)
}

// Mirror reflects p across the infinite line through the segment — the image
// method's virtual source construction.
func (s Segment) Mirror(p Point) Point {
	d := s.B.Sub(s.A)
	len2 := d.Dot(d)
	if len2 == 0 {
		return p
	}
	t := p.Sub(s.A).Dot(d) / len2
	foot := s.A.Add(d.Scale(t))
	return foot.Add(foot.Sub(p))
}

// Intersect returns the intersection point of segments s and o and whether
// they properly intersect (endpoints touching counts as intersecting).
func (s Segment) Intersect(o Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	denom := r.Cross(q)
	diff := o.A.Sub(s.A)
	if denom == 0 {
		// Parallel (collinear overlap is reported as no single intersection).
		return Point{}, false
	}
	t := diff.Cross(q) / denom
	u := diff.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point{}, false
	}
	return s.PointAt(t), true
}

// LineIntersect intersects the infinite lines through s and o, returning the
// parameter t on s (unbounded) and whether the lines are non-parallel.
func (s Segment) LineIntersect(o Segment) (Point, float64, bool) {
	r := s.B.Sub(s.A)
	q := o.B.Sub(o.A)
	denom := r.Cross(q)
	if denom == 0 {
		return Point{}, 0, false
	}
	diff := o.A.Sub(s.A)
	t := diff.Cross(q) / denom
	return s.PointAt(t), t, true
}

// Contains reports whether p lies on the segment within tolerance tol
// (distance to the segment ≤ tol).
func (s Segment) Contains(p Point, tol float64) bool {
	return s.DistToPoint(p) <= tol
}

// Polyline is a connected sequence of points — a multi-bounce propagation
// path is a polyline from transmitter via bounce points to receiver.
type Polyline []Point

// Length returns the total length of the polyline.
func (pl Polyline) Length() float64 {
	var sum float64
	for i := 1; i < len(pl); i++ {
		sum += pl[i-1].Dist(pl[i])
	}
	return sum
}

// Segments returns the constituent segments of the polyline.
func (pl Polyline) Segments() []Segment {
	if len(pl) < 2 {
		return nil
	}
	out := make([]Segment, 0, len(pl)-1)
	for i := 1; i < len(pl); i++ {
		out = append(out, Segment{A: pl[i-1], B: pl[i]})
	}
	return out
}

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 { return deg * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 { return rad * 180 / math.Pi }
