package binio

import (
	"bytes"
	"errors"
	"testing"
)

// journalFixture frames the given payloads into a full journal file
// (header + records).
func journalFixture(payloads ...[]byte) []byte {
	b := AppendJournalHeader(nil)
	for _, p := range payloads {
		b = AppendJournalRecord(b, p)
	}
	return b
}

func fixturePayloads() [][]byte {
	return [][]byte{
		[]byte("alpha"),
		{},
		[]byte("a longer third record payload with some bytes in it"),
		{0x00, 0xFF, 0x10, 0x20},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	payloads := fixturePayloads()
	b := journalFixture(payloads...)

	region, err := CheckJournalHeader(b)
	if err != nil {
		t.Fatalf("CheckJournalHeader: %v", err)
	}
	var got [][]byte
	clean, err := ScanJournal(region, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("ScanJournal: %v", err)
	}
	if clean != len(region) {
		t.Fatalf("clean = %d, want %d", clean, len(region))
	}
	if len(got) != len(payloads) {
		t.Fatalf("scanned %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestJournalHeaderChecks(t *testing.T) {
	full := journalFixture()
	// Every strict prefix of the header is a torn header write: ErrShort.
	for n := 0; n < JournalHeaderLen; n++ {
		if _, err := CheckJournalHeader(full[:n]); !errors.Is(err, ErrShort) {
			t.Errorf("header prefix %d: err = %v, want ErrShort", n, err)
		}
	}
	// Wrong magic and wrong version are refusals, not torn writes.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, err := CheckJournalHeader(bad); !errors.Is(err, ErrBadJournal) {
		t.Errorf("bad magic: err = %v, want ErrBadJournal", err)
	}
	bad = append(bad[:0], full...)
	bad[5] ^= 0xFF
	if _, err := CheckJournalHeader(bad); !errors.Is(err, ErrBadJournal) {
		t.Errorf("bad version: err = %v, want ErrBadJournal", err)
	}
}

// TestJournalEveryBytePrefix is the byte-level torn-tail property: for every
// possible kill point (every byte prefix of the record region), the scan
// must recover exactly the records that were fully written before the kill
// and report the rest as a torn tail.
func TestJournalEveryBytePrefix(t *testing.T) {
	payloads := fixturePayloads()
	b := journalFixture(payloads...)
	region := b[JournalHeaderLen:]

	// recordEnds[i] = offset in region where record i's frame ends.
	var recordEnds []int
	off := 0
	for _, p := range payloads {
		off += journalFrameLen + len(p)
		recordEnds = append(recordEnds, off)
	}

	for cut := 0; cut <= len(region); cut++ {
		wantRecords := 0
		wantClean := 0
		for i, end := range recordEnds {
			if end <= cut {
				wantRecords = i + 1
				wantClean = end
			}
		}
		gotRecords := 0
		clean, err := ScanJournal(region[:cut], func(p []byte) error {
			if !bytes.Equal(p, payloads[gotRecords]) {
				t.Fatalf("cut %d: record %d corrupted", cut, gotRecords)
			}
			gotRecords++
			return nil
		})
		if gotRecords != wantRecords {
			t.Fatalf("cut %d: scanned %d records, want %d", cut, gotRecords, wantRecords)
		}
		if clean != wantClean {
			t.Fatalf("cut %d: clean = %d, want %d", cut, clean, wantClean)
		}
		if cut == wantClean {
			if err != nil {
				t.Fatalf("cut %d at a record boundary: err = %v, want nil", cut, err)
			}
		} else if !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut %d mid-record: err = %v, want ErrTornRecord", cut, err)
		}
	}
}

// TestJournalEveryByteFlip is the bit-rot property: flipping any single
// byte anywhere in the record region must never panic and must never yield
// a record that was not written (the scan either still sees a prefix of the
// original payloads, or stops with ErrTornRecord at the damage).
func TestJournalEveryByteFlip(t *testing.T) {
	payloads := fixturePayloads()
	b := journalFixture(payloads...)
	region := b[JournalHeaderLen:]

	corrupt := make([]byte, len(region))
	for pos := 0; pos < len(region); pos++ {
		copy(corrupt, region)
		corrupt[pos] ^= 0xA5
		idx := 0
		clean, err := ScanJournal(corrupt, func(p []byte) error {
			// A record surviving the flip must be one of the originals in
			// order — except the flipped one, whose CRC may collide only if
			// the flip landed in its own payload... which a XOR cannot cause
			// (the CRC of a changed payload under the same frame differs).
			if idx >= len(payloads) || !bytes.Equal(p, payloads[idx]) {
				t.Fatalf("flip at %d produced a record that was never written", pos)
			}
			idx++
			return nil
		})
		if err == nil && idx != len(payloads) {
			t.Fatalf("flip at %d: clean scan but only %d records", pos, idx)
		}
		if err != nil && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("flip at %d: err = %v, want ErrTornRecord", pos, err)
		}
		if clean > len(corrupt) {
			t.Fatalf("flip at %d: clean %d beyond region %d", pos, clean, len(corrupt))
		}
	}
}

// TestJournalAppendAfterTruncate proves the recovery contract end to end: a
// torn tail, once truncated to the clean prefix, accepts fresh appends that
// scan cleanly alongside the surviving records.
func TestJournalAppendAfterTruncate(t *testing.T) {
	payloads := fixturePayloads()
	b := journalFixture(payloads...)
	region := b[JournalHeaderLen:]

	// Kill mid-third-record.
	cut := journalFrameLen + len(payloads[0]) + journalFrameLen + len(payloads[1]) + 3
	torn := region[:cut]
	clean, err := ScanJournal(torn, nil)
	if !errors.Is(err, ErrTornRecord) {
		t.Fatalf("err = %v, want ErrTornRecord", err)
	}

	resumed := append(append([]byte(nil), torn[:clean]...), AppendJournalRecord(nil, []byte("post-crash"))...)
	var got [][]byte
	n, err := ScanJournal(resumed, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil || n != len(resumed) {
		t.Fatalf("resumed scan: clean %d/%d, err %v", n, len(resumed), err)
	}
	want := [][]byte{payloads[0], payloads[1], []byte("post-crash")}
	if len(got) != len(want) {
		t.Fatalf("resumed records = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("resumed record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestReserveLenMatchesAppendBytes pins the reserve-and-patch framing to the
// AppendBytes layout it promises to reproduce, including through the string
// variant.
func TestReserveLenMatchesAppendBytes(t *testing.T) {
	payload := []byte("nested blob content")
	want := AppendBytes([]byte{0xEE}, payload)

	got, mark := ReserveLen([]byte{0xEE})
	got = append(got, payload...)
	got = PatchLen(got, mark)
	if !bytes.Equal(got, want) {
		t.Errorf("ReserveLen/PatchLen = %x, want %x", got, want)
	}

	if s := AppendString([]byte{0xEE}, string(payload)); !bytes.Equal(s, want) {
		t.Errorf("AppendString = %x, want %x", s, want)
	}
}

// TestJournalRecordInPlace pins Begin/EndJournalRecord to the
// AppendJournalRecord framing.
func TestJournalRecordInPlace(t *testing.T) {
	payload := []byte("framed in place")
	want := AppendJournalRecord(nil, payload)
	got, mark := BeginJournalRecord(nil)
	got = append(got, payload...)
	got = EndJournalRecord(got, mark)
	if !bytes.Equal(got, want) {
		t.Errorf("Begin/EndJournalRecord = %x, want %x", got, want)
	}
}

// TestScanJournalCallbackError: an error from fn stops the scan, excludes
// the record from the clean prefix, and surfaces as-is.
func TestScanJournalCallbackError(t *testing.T) {
	payloads := fixturePayloads()
	b := journalFixture(payloads...)
	region := b[JournalHeaderLen:]
	sentinel := errors.New("sentinel")
	calls := 0
	clean, err := ScanJournal(region, func(p []byte) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if want := journalFrameLen + len(payloads[0]); clean != want {
		t.Fatalf("clean = %d, want %d", clean, want)
	}
}
