package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Journal framing: an append-only file opens with a 6-byte header (magic +
// version) followed by a flat sequence of CRC-framed records,
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// so a crash can only ever damage the tail: ScanJournal walks record by
// record, verifying each CRC, and reports exactly how many bytes form a
// clean prefix. Everything after the first torn or corrupt record is the
// crash residue to truncate — records are not self-delimiting after damage,
// so nothing beyond that point can be trusted even if a later CRC happens
// to line up.
const (
	// JournalMagic marks a journal file ("MLWJ").
	JournalMagic uint32 = 0x4D4C574A
	// JournalVersion tags the journal framing layout.
	JournalVersion uint16 = 1
	// JournalHeaderLen is the byte length of the file header.
	JournalHeaderLen = 6
	// journalFrameLen is the per-record framing overhead (length + CRC).
	journalFrameLen = 8
)

// ErrTornRecord reports a journal tail cut mid-record (torn write or bit
// rot): the bytes before it are intact, the bytes from it on are not.
var ErrTornRecord = errors.New("binio: torn journal record")

// ErrBadJournal reports a journal header this build must not touch: wrong
// magic (not a journal at all) or a version it does not understand.
var ErrBadJournal = errors.New("binio: bad journal header")

// journalTable is the CRC-32C (Castagnoli) table, shared so the framing
// helpers never allocate.
var journalTable = crc32.MakeTable(crc32.Castagnoli)

// AppendJournalHeader appends the journal file header.
func AppendJournalHeader(dst []byte) []byte {
	dst = AppendU32(dst, JournalMagic)
	return AppendU16(dst, JournalVersion)
}

// CheckJournalHeader validates a journal file's header and returns the
// record region that follows it. A buffer shorter than the header returns
// ErrShort (a torn header write — rebuildable); a full header with the
// wrong magic or version returns ErrBadJournal (refuse, don't clobber).
func CheckJournalHeader(b []byte) ([]byte, error) {
	if len(b) < JournalHeaderLen {
		return nil, fmt.Errorf("journal header needs %d bytes, have %d: %w", JournalHeaderLen, len(b), ErrShort)
	}
	if m := binary.BigEndian.Uint32(b); m != JournalMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadJournal, m)
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != JournalVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadJournal, v, JournalVersion)
	}
	return b[JournalHeaderLen:], nil
}

// AppendString appends a length-prefixed string, byte-identical to
// AppendBytes of the same content but without forcing a []byte conversion
// (and its allocation) on the caller.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// ReserveLen appends a 4-byte length placeholder and returns the mark to
// PatchLen later — the zero-allocation way to build an AppendBytes-framed
// nested blob in place instead of serializing it to a scratch slice first.
func ReserveLen(dst []byte) ([]byte, int) {
	dst = AppendU32(dst, 0)
	return dst, len(dst)
}

// PatchLen writes everything appended since ReserveLen's mark into the
// reserved prefix, completing a length-prefixed field byte-identical to
// AppendBytes of the same content.
func PatchLen(dst []byte, mark int) []byte {
	binary.BigEndian.PutUint32(dst[mark-4:], uint32(len(dst)-mark))
	return dst
}

// BeginJournalRecord reserves a record frame (length + CRC) and returns the
// mark of the payload start; append the payload, then EndJournalRecord.
func BeginJournalRecord(dst []byte) ([]byte, int) {
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	return dst, len(dst)
}

// EndJournalRecord completes a record begun with BeginJournalRecord,
// patching the payload length and CRC into the reserved frame.
func EndJournalRecord(dst []byte, mark int) []byte {
	payload := dst[mark:]
	binary.BigEndian.PutUint32(dst[mark-journalFrameLen:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[mark-4:], crc32.Checksum(payload, journalTable))
	return dst
}

// AppendJournalRecord appends one CRC-framed record holding payload.
func AppendJournalRecord(dst, payload []byte) []byte {
	dst, mark := BeginJournalRecord(dst)
	dst = append(dst, payload...)
	return EndJournalRecord(dst, mark)
}

// ScanJournal walks a journal record region (the bytes after the header),
// invoking fn — which may be nil — with each intact record's payload, and
// returns the length of the clean prefix: the byte count of consecutive
// records that frame and checksum correctly from the start of b.
//
// A tail that ends mid-record or fails its CRC stops the scan with
// ErrTornRecord; clean then marks where the damage begins, so the caller
// recovers by truncating to it. The length guard compares in uint64 before
// any slicing, so a hostile length prefix can neither wrap the arithmetic
// nor drive an allocation — the scan allocates nothing regardless of input.
// An error from fn also stops the scan, excluding that record from the
// clean prefix, and is returned as-is.
func ScanJournal(b []byte, fn func(payload []byte) error) (clean int, err error) {
	off := 0
	for off < len(b) {
		rest := b[off:]
		if len(rest) < journalFrameLen {
			return off, fmt.Errorf("%d trailing bytes: %w", len(rest), ErrTornRecord)
		}
		n := binary.BigEndian.Uint32(rest)
		if uint64(n) > uint64(len(rest)-journalFrameLen) {
			return off, fmt.Errorf("record of %d bytes with %d left: %w", n, len(rest)-journalFrameLen, ErrTornRecord)
		}
		sum := binary.BigEndian.Uint32(rest[4:])
		payload := rest[journalFrameLen : journalFrameLen+int(n)]
		if got := crc32.Checksum(payload, journalTable); got != sum {
			return off, fmt.Errorf("record checksum %#x, want %#x: %w", got, sum, ErrTornRecord)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += journalFrameLen + int(n)
	}
	return off, nil
}
