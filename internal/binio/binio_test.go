package binio

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU16(b, 0xBEEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<63|12345)
	b = AppendI64(b, -42)
	b = AppendF64(b, math.Pi)
	b = AppendF64(b, math.Inf(-1))
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendF64s(b, []float64{1.5, -2.5, math.NaN()})
	b = AppendF64s(b, nil)
	b = AppendBytes(b, []byte("hello"))

	r := NewReader(b)
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("u16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("u32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Fatalf("u64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("i64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("-inf = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || !math.IsNaN(fs[2]) {
		t.Fatalf("f64s = %v", fs)
	}
	if got := r.F64s(); got != nil {
		t.Fatalf("empty f64s = %v", got)
	}
	if got := string(r.Bytes()); got != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("done: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U64(); got != 0 {
		t.Fatalf("short u64 = %d", got)
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
	// Every further read stays zero-valued; the error is sticky.
	if r.U32() != 0 || r.F64() != 0 || r.Bool() || r.F64s() != nil || r.Bytes() != nil {
		t.Fatal("reads after error returned data")
	}
	if err := r.Done(); !errors.Is(err, ErrShort) {
		t.Fatalf("done = %v", err)
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader(AppendU16(nil, 7))
	_ = r.U16()
	if err := r.Done(); err != nil {
		t.Fatalf("clean done: %v", err)
	}
	r = NewReader(append(AppendU16(nil, 7), 0xFF))
	_ = r.U16()
	if err := r.Done(); !errors.Is(err, ErrShort) {
		t.Fatalf("trailing bytes done = %v", err)
	}
}

func TestReaderHugeSliceLength(t *testing.T) {
	// A corrupt length prefix must error, not allocate gigabytes.
	b := AppendU32(nil, 1<<30)
	r := NewReader(b)
	if got := r.F64s(); got != nil || r.Err() == nil {
		t.Fatalf("huge f64s = %v, err %v", got, r.Err())
	}
	r = NewReader(b)
	if got := r.Bytes(); got != nil || r.Err() == nil {
		t.Fatalf("huge bytes = %v, err %v", got, r.Err())
	}
}
