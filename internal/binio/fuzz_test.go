package binio

import (
	"errors"
	"testing"
)

// FuzzJournalScan throws arbitrary bytes at the journal recovery path —
// header check plus clean-prefix scan — asserting the invariants crash
// recovery rests on: no panic on any input, no allocation driven by a
// hostile length prefix, a clean offset that always lands inside the
// buffer, and errors that are always the typed sentinels.
func FuzzJournalScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendJournalHeader(nil))
	f.Add(journalFixture(fixturePayloads()...))
	// Length-inflated frame: claims 2 GiB with 4 bytes behind it.
	inflated := AppendJournalHeader(nil)
	inflated = AppendU32(inflated, 1<<31)
	inflated = AppendU32(inflated, 0xDEADBEEF)
	inflated = append(inflated, 1, 2, 3, 4)
	f.Add(inflated)
	// Torn tail and flipped CRC variants of a real file.
	full := journalFixture(fixturePayloads()...)
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[JournalHeaderLen+5] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		region, err := CheckJournalHeader(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrBadJournal) {
				t.Fatalf("CheckJournalHeader: untyped error %v", err)
			}
			return
		}
		records := 0
		clean, err := ScanJournal(region, func(p []byte) error {
			records++
			if len(p) > len(region) {
				t.Fatalf("payload of %d bytes from a %d-byte region", len(p), len(region))
			}
			return nil
		})
		if clean < 0 || clean > len(region) {
			t.Fatalf("clean = %d outside [0, %d]", clean, len(region))
		}
		if err == nil && clean != len(region) {
			t.Fatalf("clean scan stopped at %d of %d", clean, len(region))
		}
		if err != nil && !errors.Is(err, ErrTornRecord) {
			t.Fatalf("ScanJournal: untyped error %v", err)
		}
		// The clean prefix must rescan identically — recovery truncates to
		// it and then trusts it.
		again, err2 := ScanJournal(region[:clean], nil)
		if err2 != nil || again != clean {
			t.Fatalf("clean prefix rescan: %d, %v", again, err2)
		}
	})
}
