// Package binio holds the byte-level primitives behind every versioned
// binary format in this repository (link-profile snapshots, adapter state,
// engine link records). Writers are plain append helpers; the Reader carries
// a sticky error so decoding code reads field after field and checks once at
// the end, exactly like bufio.Scanner.
//
// All integers are big-endian, matching the csinet wire protocol. Floats are
// IEEE 754 bit patterns, so round trips are exact — the persistence layer's
// "restored links score within 1e-9" guarantee actually holds bit-for-bit at
// this level.
//
// journal.go adds the append-only framing under the fleet layer's
// write-ahead journal: a versioned file header plus length-framed,
// CRC-32C'd records, and a ScanJournal recovery primitive that walks a
// possibly torn file and reports the clean prefix — every byte a crashed
// writer managed to make durable, and nothing it didn't.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShort reports a truncated or overlong buffer.
var ErrShort = errors.New("binio: short buffer")

// AppendU16 appends a big-endian uint16.
func AppendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// AppendI64 appends a big-endian int64 (two's complement).
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendF64 appends an IEEE 754 bit pattern.
func AppendF64(dst []byte, v float64) []byte { return AppendU64(dst, math.Float64bits(v)) }

// AppendBool appends one byte (0 or 1).
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendF64s appends a length-prefixed float64 slice.
func AppendF64s(dst []byte, vs []float64) []byte {
	dst = AppendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendF64(dst, v)
	}
	return dst
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Reader consumes a buffer field by field with a sticky error: after the
// first short read every further accessor returns the zero value, and Err
// reports what went wrong. Decoders therefore read unconditionally and check
// Err (plus Rest, if the format must consume the whole buffer) exactly once.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps a buffer.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky decoding error, nil while all reads succeeded.
func (r *Reader) Err() error { return r.err }

// Rest returns the unconsumed tail.
func (r *Reader) Rest() []byte { return r.b }

// Done returns nil when the buffer was fully and cleanly consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%d trailing bytes: %w", len(r.b), ErrShort)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("need %d bytes, have %d: %w", n, len(r.b), ErrShort)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE 754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean (any non-zero value is true).
func (r *Reader) Bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// F64s reads a length-prefixed float64 slice (nil for length zero). The
// length guard compares in uint64 so a corrupt prefix cannot wrap the
// arithmetic on 32-bit platforms into a bogus pass.
func (r *Reader) F64s() []float64 {
	n := r.U32()
	if r.err != nil || n == 0 {
		return nil
	}
	if uint64(len(r.b)) < 8*uint64(n) {
		r.err = fmt.Errorf("float64 slice of %d: %w", n, ErrShort)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Bytes reads a length-prefixed byte slice (nil for length zero). The
// returned slice aliases the reader's buffer.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.b)) {
		r.err = fmt.Errorf("byte slice of %d: %w", n, ErrShort)
		return nil
	}
	return r.take(int(n))
}
