package dsp

import "math"

// Log10Fast approximates math.Log10 for the angular scoring path, where the
// dB distance pays one logarithm per weighted steering angle (~3,600 on a
// 0.05° grid). It follows the Atan2Fast/SincosFast contract: cubic-Hermite
// table over the fast range, absolute error under 2e-9, and every special
// (NaN, ±Inf, zero, negatives) deferring to the exact math implementation.
//
// The fast range is the whole positive normal line: Frexp splits x into
// m·2ᵉ with m ∈ [0.5, 1), so log₁₀(x) = log₁₀(m) + e·log₁₀(2) with the
// mantissa term read from a 128-interval table over [0.5, 1). The table's
// own error is ~1e-11; the dominant term is the final add's half-ulp, which
// stays far below the 2e-9 bound across the normal range (|e| ≤ 1024 keeps
// the exponent term under ~309, where an ulp is ~5.7e-14). Subnormals defer
// to math.Log10 like the other specials: they sit 22 decades below the
// 1e-30 floor the spectrum distance applies, so the fast path never sees
// one, and deferring keeps Log10Fast bit-identical to the math package on
// every input outside its documented range.

const log10TabN = 128 // intervals of log10(m) over m ∈ [0.5, 1]

var log10Tab [log10TabN][4]float64

func init() {
	h := 0.5 / log10TabN
	invLn10 := 1 / math.Ln10
	for i := range log10Tab {
		m0 := 0.5 + float64(i)*h
		m1 := m0 + h
		f0, f1 := math.Log10(m0), math.Log10(m1)
		d0 := invLn10 / m0
		d1 := invLn10 / m1
		hermite(&log10Tab[i], f0, f1, d0, d1, h)
	}
}

// Log10Fast approximates math.Log10 with absolute error under 2e-9 for all
// positive normal x. Non-positive, subnormal, infinite and NaN inputs defer
// to math.Log10 and match it exactly.
func Log10Fast(x float64) float64 {
	// One guard covers every special: NaN, ±Inf, x ≤ 0 and subnormals all
	// fail it (2.2250738585072014e-308 is the smallest positive normal).
	if !(x >= 2.2250738585072014e-308 && x <= math.MaxFloat64) {
		return math.Log10(x)
	}
	// Frexp by bit surgery — x is known normal, so the exponent field is the
	// whole story: clear it to 0x3FE (biased -1) to land the mantissa m in
	// [0.5, 1), and read e = x's biased exponent - 1022 so x = m·2ᵉ.
	bits := math.Float64bits(x)
	e := int(bits>>52) - 1022
	m := math.Float64frombits(bits&^(0x7FF<<52) | (0x3FE << 52))
	// The top 7 mantissa bits of m index the table directly: interval i
	// spans [0.5 + i/256, 0.5 + (i+1)/256).
	i := int(bits>>45) & (log10TabN - 1)
	u := m - (0.5 + float64(i)*(0.5/log10TabN))
	c := &log10Tab[i]
	const log10of2 = 0.30102999566398119521 // log₁₀(2)
	return c[0] + u*(c[1]+u*(c[2]+u*c[3])) + float64(e)*log10of2
}
