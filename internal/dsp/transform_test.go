package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// TestTransformMatchesMatrixDFT checks the planned FFT against the O(n²)
// reference for every size up to 64 — smooth sizes take the mixed-radix
// path, sizes with a prime factor > 5 exercise the fallback.
func TestTransformMatchesMatrixDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 64; n++ {
		x := randComplex(rng, n)
		p := NewTransform(n)
		if p.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, p.Len())
		}
		gotF := make([]complex128, n)
		gotI := make([]complex128, n)
		p.DFTInto(gotF, x)
		p.IDFTInto(gotI, x)
		wantF := DFT(x)
		wantI := IDFT(x)
		for k := 0; k < n; k++ {
			if d := cmplx.Abs(gotF[k] - wantF[k]); d > 1e-9 {
				t.Fatalf("n=%d DFT[%d]: |planned-matrix| = %g", n, k, d)
			}
			if d := cmplx.Abs(gotI[k] - wantI[k]); d > 1e-9 {
				t.Fatalf("n=%d IDFT[%d]: |planned-matrix| = %g", n, k, d)
			}
		}
	}
}

// TestTransformRoundTrip checks IDFT(DFT(x)) ≈ x on the planned path.
func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 5, 6, 12, 30, 60} {
		p := NewTransform(n)
		x := randComplex(rng, n)
		fwd := make([]complex128, n)
		back := make([]complex128, n)
		p.DFTInto(fwd, x)
		p.IDFTInto(back, fwd)
		for k := range x {
			if d := cmplx.Abs(back[k] - x[k]); d > 1e-9 {
				t.Fatalf("n=%d round trip[%d]: |err| = %g", n, k, d)
			}
		}
	}
}

// TestTransformMismatchedLengthFallsBack feeds a 30-planned transform a
// 12-point vector; the generic path must serve it correctly.
func TestTransformMismatchedLengthFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewTransform(30)
	x := randComplex(rng, 12)
	got := make([]complex128, 12)
	p.IDFTInto(got, x)
	want := IDFT(x)
	for k := range want {
		if d := cmplx.Abs(got[k] - want[k]); d > 1e-12 {
			t.Fatalf("fallback IDFT[%d]: |err| = %g", k, d)
		}
	}
}

// TestTransformAllocFree asserts the planned hot path allocates nothing.
func TestTransformAllocFree(t *testing.T) {
	p := NewTransform(30)
	x := randComplex(rand.New(rand.NewSource(5)), 30)
	dst := make([]complex128, 30)
	p.IDFTInto(dst, x) // prime twiddle cache
	if avg := testing.AllocsPerRun(100, func() { p.IDFTInto(dst, x) }); avg != 0 {
		t.Fatalf("Transform.IDFTInto allocates %v per run", avg)
	}
}

// TestMedianInPlaceMatchesMedian cross-checks quickselect against the
// sorting implementation over random lengths, duplicates and NaNs.
func TestMedianInPlaceMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = float64(rng.Intn(3)) // force duplicates
			default:
				xs[i] = rng.NormFloat64()
			}
		}
		if trial%25 == 0 {
			xs[rng.Intn(n)] = math.NaN()
		}
		want := sortMedian(xs)
		got, err := MedianInPlace(append([]float64(nil), xs...))
		if err != nil {
			t.Fatal(err)
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: MedianInPlace = %v, sort median = %v (xs=%v)", trial, got, want, xs)
		}
	}
	if _, err := MedianInPlace(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty MedianInPlace: %v, want ErrEmptyInput", err)
	}
}

// sortMedian is the reference implementation: full sort, middle element(s).
func sortMedian(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TestMedianInPlaceAllocFree asserts the quickselect path allocates nothing.
func TestMedianInPlaceAllocFree(t *testing.T) {
	xs := make([]float64, 31)
	rng := rand.New(rand.NewSource(23))
	if avg := testing.AllocsPerRun(100, func() {
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if _, err := MedianInPlace(xs); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("MedianInPlace allocates %v per run", avg)
	}
}
