package dsp

import (
	"fmt"
	"math"
)

// LinearFit holds y ≈ Slope·x + Intercept with the coefficient of
// determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear performs an ordinary least-squares line fit.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("linear fit: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("linear fit needs ≥2 points: %w", ErrEmptyInput)
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("linear fit: degenerate xs (all equal)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogFit holds y ≈ A·ln(x) + B — the logarithmic relationship the paper fits
// between RSS change and multipath factor (Fig. 3b/3c).
type LogFit struct {
	A  float64
	B  float64
	R2 float64
}

// FitLog performs least squares of y on ln(x). Points with x ≤ 0 are
// rejected (the multipath factor is positive by construction).
func FitLog(xs, ys []float64) (LogFit, error) {
	if len(xs) != len(ys) {
		return LogFit{}, fmt.Errorf("log fit: %d xs vs %d ys", len(xs), len(ys))
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		lx = append(lx, math.Log(x))
		ly = append(ly, ys[i])
	}
	if len(lx) < 2 {
		return LogFit{}, fmt.Errorf("log fit needs ≥2 positive-x points: %w", ErrEmptyInput)
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return LogFit{}, fmt.Errorf("log fit: %w", err)
	}
	return LogFit{A: lin.Slope, B: lin.Intercept, R2: lin.R2}, nil
}

// Eval returns the fitted value A·ln(x) + B.
func (f LogFit) Eval(x float64) float64 {
	return f.A*math.Log(x) + f.B
}

// Eval returns the fitted value Slope·x + Intercept.
func (f LinearFit) Eval(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// DB converts a linear power ratio to decibels: 10·log10(r). Non-positive
// ratios map to -inf dB.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}
