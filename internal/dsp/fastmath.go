package dsp

import "math"

// Fast transcendental approximations for the per-packet sanitize path, where
// atan2 (phase extraction) and sincos (phase correction) dominate the CPU
// profile. Both use cubic-Hermite interpolation tables: exact function and
// derivative values at the knots, so the approximation is C¹ with maximum
// absolute error below 2e-9 — five orders of magnitude under the ~1e-2 rad
// phase noise of the impairment models, and far below anything a detection
// threshold can resolve. Inputs outside the tables' fast range (NaN, ±Inf,
// huge phases) fall back to the exact math-package implementations, so the
// functions are total.

const (
	atanTabN = 128 // intervals of atan(t) over t ∈ [0,1]
	sinTabN  = 256 // intervals of sin(φ) over φ ∈ [0,2π)
)

var (
	atanTab [atanTabN][4]float64
	sinTab  [sinTabN][4]float64
)

func init() {
	h := 1.0 / atanTabN
	for i := range atanTab {
		t0 := float64(i) * h
		t1 := t0 + h
		f0, f1 := math.Atan(t0), math.Atan(t1)
		d0 := 1 / (1 + t0*t0)
		d1 := 1 / (1 + t1*t1)
		hermite(&atanTab[i], f0, f1, d0, d1, h)
	}
	hs := 2 * math.Pi / sinTabN
	for i := range sinTab {
		t0 := float64(i) * hs
		f0, f1 := math.Sin(t0), math.Sin(t0+hs)
		d0, d1 := math.Cos(t0), math.Cos(t0+hs)
		hermite(&sinTab[i], f0, f1, d0, d1, hs)
	}
}

// hermite fills c with the cubic matching f and f′ at both ends of [0, h].
func hermite(c *[4]float64, f0, f1, d0, d1, h float64) {
	c[0] = f0
	c[1] = d0
	c[2] = (3*(f1-f0)/h - 2*d0 - d1) / h
	c[3] = (2*(f0-f1)/h + d0 + d1) / (h * h)
}

// atanUnit approximates atan(t) for t ∈ [0, 1].
func atanUnit(t float64) float64 {
	x := t * atanTabN
	i := int(x)
	if i >= atanTabN { // t == 1.0
		i = atanTabN - 1
	}
	u := t - float64(i)*(1.0/atanTabN)
	c := &atanTab[i]
	return c[0] + u*(c[1]+u*(c[2]+u*c[3]))
}

// Atan2Fast approximates math.Atan2 with absolute error under 1e-10 rad.
// Specials (NaN, ±Inf, 0/0) defer to math.Atan2 and match it exactly.
func Atan2Fast(y, x float64) float64 {
	ay, ax := math.Abs(y), math.Abs(x)
	// One guard covers every special: NaN and ±Inf fail s < MaxFloat64
	// (NaN poisons the sum, Inf saturates it), and 0/0 fails s > 0.
	if s := ax + ay; !(s < math.MaxFloat64 && s > 0) {
		return math.Atan2(y, x)
	}
	var z float64
	if ay <= ax {
		z = atanUnit(ay / ax)
	} else {
		z = math.Pi/2 - atanUnit(ax/ay)
	}
	if x < 0 {
		z = math.Pi - z
	}
	return math.Copysign(z, y)
}

// sinUnit approximates sin(2π·r) for r ∈ [0, 1).
func sinUnit(r float64) float64 {
	x := r * sinTabN
	i := int(x)
	u := (x - float64(i)) * (2 * math.Pi / sinTabN)
	c := &sinTab[i]
	return c[0] + u*(c[1]+u*(c[2]+u*c[3]))
}

// SincosFast approximates math.Sincos with absolute error under 2e-9 for
// |φ| < 1e6; larger magnitudes (and NaN/±Inf) defer to math.Sincos. The
// cutoff keeps the multiply-and-floor range reduction's ~|φ|·ε error
// (≈1.1e-10 at 1e6) below the table's own ~9e-10, so the documented bound
// holds over the whole fast range — sanitize's fitted phase trends are a
// few hundred radians at most, far inside it.
func SincosFast(phi float64) (sin, cos float64) {
	if !(math.Abs(phi) < 1e6) {
		return math.Sincos(phi)
	}
	r := phi * (1 / (2 * math.Pi))
	r -= math.Floor(r)
	if r >= 1 { // fraction rounded up to 1.0
		r = 0
	}
	rc := r + 0.25 // cos(φ) = sin(φ + π/2)
	if rc >= 1 {
		rc--
	}
	return sinUnit(r), sinUnit(rc)
}
