package dsp

import "sync"

// planCache maps transform size → *Transform. A Transform is immutable after
// NewTransform (its radix plan and twiddle tables are read-only; every
// per-call intermediate lives on the stack or in the caller's dst), so one
// plan per size serves every goroutine in the process. Sizes are few — the
// CSI pipeline transforms 30-point vectors — and lookups are hot, so a
// lock-free-on-read sync.Map fits, exactly like the twiddle cache beneath it.
var planCache sync.Map

// Plan returns the process-wide shared Transform of the given size, planning
// it on first use. Callers across shards and links share one plan: the
// planning cost (radix factorization + twiddle tables) is paid once per size
// rather than once per scratch, and every user hits the same warmed tables.
func Plan(n int) *Transform {
	if v, ok := planCache.Load(n); ok {
		return v.(*Transform)
	}
	v, _ := planCache.LoadOrStore(n, NewTransform(n))
	return v.(*Transform)
}
