package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	m, err := Mean(xs)
	if err != nil || math.Abs(m-2.5) > eps {
		t.Fatalf("mean = %v err = %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || math.Abs(v-1.25) > eps {
		t.Fatalf("variance = %v err = %v", v, err)
	}
	s, err := StdDev(xs)
	if err != nil || math.Abs(s-math.Sqrt(1.25)) > eps {
		t.Fatalf("stddev = %v err = %v", s, err)
	}
}

func TestEmptyInputs(t *testing.T) {
	for name, fn := range map[string]func() error{
		"mean":     func() error { _, err := Mean(nil); return err },
		"variance": func() error { _, err := Variance(nil); return err },
		"median":   func() error { _, err := Median(nil); return err },
		"pct":      func() error { _, err := Percentile(nil, 50); return err },
		"minmax":   func() error { _, _, err := MinMax(nil); return err },
		"argmax":   func() error { _, err := ArgMax(nil); return err },
		"cdf":      func() error { _, err := NewCDF(nil); return err },
	} {
		if err := fn(); !errors.Is(err, ErrEmptyInput) {
			t.Fatalf("%s: err = %v, want ErrEmptyInput", name, err)
		}
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5}, 5},
		{[]float64{-1, -1, 2}, -1},
	}
	for _, tc := range tests {
		got, err := Median(tc.in)
		if err != nil {
			t.Fatalf("median(%v): %v", tc.in, err)
		}
		if math.Abs(got-tc.want) > eps {
			t.Fatalf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("median mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatalf("pct %v: %v", tc.p, err)
		}
		if math.Abs(got-tc.want) > eps {
			t.Fatalf("pct %v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile >100 accepted")
	}
	one, err := Percentile([]float64{7}, 93)
	if err != nil || one != 7 {
		t.Fatalf("single-element pct = %v err = %v", one, err)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v %v err %v", lo, hi, err)
	}
	idx, err := ArgMax([]float64{3, -1, 7, 2})
	if err != nil || idx != 2 {
		t.Fatalf("argmax = %v err %v", idx, err)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	} {
		if got := c.At(tc.x); math.Abs(got-tc.want) > eps {
			t.Fatalf("cdf(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Fatalf("quantile(0.5) = %v, want 2", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Fatalf("quantile(0) = %v, want 1", q)
	}
	if q := c.Quantile(1); q != 3 {
		t.Fatalf("quantile(1) = %v, want 3", q)
	}
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("points lens %d %d", len(xs), len(ps))
	}
	if ps[0] > ps[len(ps)-1] {
		t.Fatalf("cdf points not nondecreasing: %v", ps)
	}
	if ps[len(ps)-1] != 1 {
		t.Fatalf("cdf at max = %v, want 1", ps[len(ps)-1])
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sample := make([]float64, 200)
	for i := range sample {
		sample[i] = rng.NormFloat64()
	}
	c, err := NewCDF(sample)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for q := 0.05; q <= 1.0; q += 0.05 {
		v := c.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestDFTIDFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 16, 30} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IDFT(DFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d roundtrip mismatch at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

// TestDFTIntoMatchesDFTAndAllocs checks the Into variants agree with the
// allocating ones and stay allocation-free once the size's twiddle table is
// cached.
func TestDFTIntoMatchesDFTAndAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 16, 30} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		fwd := make([]complex128, n)
		inv := make([]complex128, n)
		DFTInto(fwd, x)
		IDFTInto(inv, x)
		wantF := DFT(x)
		wantI := IDFT(x)
		for i := range x {
			if cmplx.Abs(fwd[i]-wantF[i]) > 1e-12 || cmplx.Abs(inv[i]-wantI[i]) > 1e-12 {
				t.Fatalf("n=%d Into mismatch at %d", n, i)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			DFTInto(fwd, x)
			IDFTInto(inv, x)
		})
		if allocs > 0 {
			t.Fatalf("n=%d: transform Into allocates %v per call", n, allocs)
		}
	}
	// Zero-length inputs are a no-op, not a panic.
	DFTInto(nil, nil)
	IDFTInto(nil, nil)
}

func TestDFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	x := []complex128{1, 0, 0, 0}
	y := DFT(x)
	for i, v := range y {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("dft[%d] = %v, want 1", i, v)
		}
	}
}

func TestDFTSingleTone(t *testing.T) {
	// x[n] = e^{j2πn/N} concentrates in bin 1.
	const n = 8
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i)/n))
	}
	y := DFT(x)
	if cmplx.Abs(y[1]-complex(n, 0)) > 1e-9 {
		t.Fatalf("bin 1 = %v, want %v", y[1], n)
	}
	for i := range y {
		if i == 1 {
			continue
		}
		if cmplx.Abs(y[i]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, y[i])
		}
	}
}

func TestDFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]complex128, 30)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := DFT(x)
	var px, py float64
	for i := range x {
		px += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		py += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	py /= float64(len(x))
	if math.Abs(px-py) > 1e-8*math.Max(1, px) {
		t.Fatalf("parseval violated: %v vs %v", px, py)
	}
}

func TestUnwrap(t *testing.T) {
	// A steadily decreasing phase wrapped into (-π, π] must unwrap to a line.
	n := 50
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := 0; i < n; i++ {
		truth[i] = -0.9 * float64(i)
		w := math.Mod(truth[i]+math.Pi, 2*math.Pi)
		if w < 0 {
			w += 2 * math.Pi
		}
		wrapped[i] = w - math.Pi
	}
	un := Unwrap(wrapped)
	for i := 1; i < n; i++ {
		d := un[i] - un[i-1]
		if math.Abs(d-(-0.9)) > 1e-9 {
			t.Fatalf("unwrap slope at %d = %v, want -0.9", i, d)
		}
	}
}

func TestUnwrapDoesNotMutate(t *testing.T) {
	in := []float64{0, 3, -3}
	_ = Unwrap(in)
	if in[1] != 3 || in[2] != -3 {
		t.Fatalf("unwrap mutated input: %v", in)
	}
}

func TestInterpolateComplex(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []complex128{0, 1i, 2}
	out, err := InterpolateComplex(xs, ys, []float64{0.5, 1.5, -1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(out[0]-0.5i) > eps {
		t.Fatalf("interp(0.5) = %v", out[0])
	}
	if cmplx.Abs(out[1]-(1+0.5i)) > eps {
		t.Fatalf("interp(1.5) = %v", out[1])
	}
	if out[2] != ys[0] || out[3] != ys[2] {
		t.Fatalf("clamping failed: %v %v", out[2], out[3])
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := InterpolateComplex([]float64{0, 0}, []complex128{1, 2}, []float64{0}); err == nil {
		t.Fatal("non-increasing xs accepted")
	}
	if _, err := InterpolateComplex([]float64{0}, []complex128{1, 2}, nil); err == nil {
		t.Fatal("len mismatch accepted")
	}
	if _, err := InterpolateComplex(nil, nil, nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > eps {
			t.Fatalf("ma[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Width 1 (and any non-positive width) is identity.
	id := MovingAverage(xs, 1)
	for i := range xs {
		if id[i] != xs[i] {
			t.Fatalf("identity ma differs at %d", i)
		}
	}
	neg := MovingAverage(xs, -3)
	for i := range xs {
		if neg[i] != xs[i] {
			t.Fatalf("negative-width ma differs at %d", i)
		}
	}
}

// naiveMovingAverage is the O(n·width) reference the prefix-sum
// implementation must match, edge semantics included.
func naiveMovingAverage(xs []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// TestMovingAverageMatchesNaive cross-checks the O(n) prefix-sum rewrite
// against the naive windowed sum over random inputs, lengths, and widths —
// including even widths (rounded up) and widths larger than the input.
func TestMovingAverageMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		width := -2 + rng.Intn(2*n+6)
		got := MovingAverage(xs, width)
		want := naiveMovingAverage(xs, width)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("trial %d n=%d width=%d: ma[%d] = %v, want %v", trial, n, width, i, got[i], want[i])
			}
		}
	}
}

func TestMovingAverageEmpty(t *testing.T) {
	if out := MovingAverage(nil, 5); len(out) != 0 {
		t.Fatalf("ma(nil) = %v", out)
	}
}

// TestMovingAverageWideWindow pins the all-covering case: every output is
// the global mean once the window spans the whole input.
func TestMovingAverageWideWindow(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	out := MovingAverage(xs, 99)
	for i, v := range out {
		if math.Abs(v-5) > eps {
			t.Fatalf("wide ma[%d] = %v, want 5", i, v)
		}
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > eps || math.Abs(f.Intercept-1) > eps {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > eps {
		t.Fatalf("r2 = %v, want 1", f.R2)
	}
	if math.Abs(f.Eval(10)-21) > eps {
		t.Fatalf("eval = %v", f.Eval(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("len mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate xs accepted")
	}
}

func TestFitLogExact(t *testing.T) {
	// y = -3·ln(x) + 0.5
	xs := []float64{0.1, 0.2, 0.5, 1.0}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = -3*math.Log(x) + 0.5
	}
	f, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A+3) > 1e-8 || math.Abs(f.B-0.5) > 1e-8 {
		t.Fatalf("log fit = %+v", f)
	}
	if math.Abs(f.Eval(0.3)-(-3*math.Log(0.3)+0.5)) > 1e-8 {
		t.Fatalf("eval wrong")
	}
}

func TestFitLogSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, math.E}
	ys := []float64{99, 99, 1, 2} // y = ln(x) + 1 on the valid points
	f, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-1) > 1e-8 || math.Abs(f.B-1) > 1e-8 {
		t.Fatalf("log fit = %+v", f)
	}
	if _, err := FitLog([]float64{-1, 0}, []float64{1, 2}); err == nil {
		t.Fatal("all-nonpositive xs accepted")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDB(DB(r)); math.Abs(got-r) > 1e-9*r {
			t.Fatalf("db roundtrip %v -> %v", r, got)
		}
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-3), -1) {
		t.Fatal("nonpositive ratio should be -inf dB")
	}
	if DB(10) != 10 {
		t.Fatalf("db(10) = %v", DB(10))
	}
}

// Property: DFT is linear.
func TestQuickDFTLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(12)
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		lhs := DFT(sum)
		dx := DFT(x)
		dy := DFT(y)
		for i := range lhs {
			want := a*dx[i] + dy[i]
			if cmplx.Abs(lhs[i]-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: empirical CDF is monotone nondecreasing and bounded by [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			clean = append(clean, x)
		}
		if len(clean) == 0 {
			return true
		}
		c, err := NewCDF(clean)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(clean)
		prev := -1.0
		for i := 0; i <= 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(hi) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
