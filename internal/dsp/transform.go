package dsp

// Transform is a planned DFT/IDFT of one fixed size. Sizes whose prime
// factors are all in {2, 3, 5} (the CSI pipeline's 30-subcarrier vectors
// included) run as a mixed-radix Cooley–Tukey FFT — O(n·Σradices) complex
// multiplies instead of the O(n²) of the package-level DFTInto — while any
// other size falls back to the cached-twiddle matrix path, so a Transform is
// never wrong, only sometimes not faster.
//
// A Transform is allocation-free per call and safe for concurrent use: after
// NewTransform the plan is immutable (radices and twiddle tables are only
// read), and every per-call intermediate lives on the stack or in the
// caller's dst. Prefer Plan over NewTransform so all workers share one
// cached plan per size.
type Transform struct {
	n       int
	radices []int // mixed-radix plan, outermost first; nil → matrix fallback
	fwd     dirTables
	inv     dirTables
}

// dirTables holds one direction's twiddles: the size-N table plus the small
// fixed butterfly matrices W_r^{jq} (which are level-independent, so each
// radix needs exactly one).
type dirTables struct {
	w  []complex128
	b3 [2]complex128    // W_3^1, W_3^2
	b5 [5][5]complex128 // W_5^{jq}
}

func (d *dirTables) fill(n int, w []complex128) {
	d.w = w
	if n%3 == 0 {
		d.b3[0] = w[n/3]
		d.b3[1] = w[2*n/3]
	}
	if n%5 == 0 {
		for q := 0; q < 5; q++ {
			for j := 0; j < 5; j++ {
				d.b5[q][j] = w[(n/5*j*q)%n]
			}
		}
	}
}

// NewTransform plans transforms of the given size. Any n ≥ 0 is accepted.
func NewTransform(n int) *Transform {
	p := &Transform{n: n}
	if n > 1 {
		rem := n
		var radices []int
		for _, r := range [...]int{2, 3, 5} {
			for rem%r == 0 {
				radices = append(radices, r)
				rem /= r
			}
		}
		if rem == 1 {
			p.radices = radices
			ts := twiddles(n)
			p.fwd.fill(n, ts.fwd)
			p.inv.fill(n, ts.inv)
		}
	}
	return p
}

// Len reports the planned transform size.
func (p *Transform) Len() int { return p.n }

// DFTInto computes the forward transform of x into dst (both length n, no
// aliasing), identical in result to the package-level DFTInto up to
// floating-point summation order. Mismatched lengths take the generic path.
func (p *Transform) DFTInto(dst, x []complex128) {
	if len(x) != p.n || len(dst) != p.n || p.radices == nil || p.n < 2 {
		DFTInto(dst, x)
		return
	}
	p.rec(&p.fwd, dst, x, 0, 1, p.n, 1, 0)
}

// IDFTInto computes the inverse transform (with 1/n scaling) of x into dst,
// identical in result to the package-level IDFTInto up to floating-point
// summation order. Mismatched lengths take the generic path.
func (p *Transform) IDFTInto(dst, x []complex128) {
	if len(x) != p.n || len(dst) != p.n || p.radices == nil || p.n < 2 {
		IDFTInto(dst, x)
		return
	}
	p.rec(&p.inv, dst, x, 0, 1, p.n, 1, 0)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

// rec runs one decimation-in-time level: the logical input is the length-n
// sequence src[off], src[off+stride], …; unit is the twiddle step of this
// level in the size-N table (N/n). dst is the contiguous output segment.
func (p *Transform) rec(d *dirTables, dst, src []complex128, off, stride, n, unit, level int) {
	r := p.radices[level]
	m := n / r
	if m == 1 {
		// Leaf: direct size-r DFT of the strided inputs via the fixed
		// butterfly matrices — no index arithmetic in the inner loop.
		switch r {
		case 2:
			a, b := src[off], src[off+stride]
			dst[0] = a + b
			dst[1] = a - b
		case 3:
			a, b, c := src[off], src[off+stride], src[off+2*stride]
			w1, w2 := d.b3[0], d.b3[1]
			dst[0] = a + b + c
			dst[1] = a + b*w1 + c*w2
			dst[2] = a + b*w2 + c*w1
		default:
			var t [5]complex128
			for j := 0; j < 5; j++ {
				t[j] = src[off+j*stride]
			}
			for q := 0; q < 5; q++ {
				bw := &d.b5[q]
				dst[q] = t[0] + t[1]*bw[1] + t[2]*bw[2] + t[3]*bw[3] + t[4]*bw[4]
			}
		}
		return
	}
	for j := 0; j < r; j++ {
		p.rec(d, dst[j*m:(j+1)*m], src, off+j*stride, stride*r, m, unit*r, level+1)
	}
	// Combine the r sub-transforms in place: for each output row kk, twiddle
	// the r sub-values then butterfly across them. The butterfly reads and
	// writes the same r slots {j·m+kk}, so no scratch is needed.
	N := p.n
	w := d.w
	switch r {
	case 2:
		idx := 0
		for kk := 0; kk < m; kk++ {
			t0 := dst[kk]
			t1 := dst[m+kk] * w[idx]
			dst[kk] = t0 + t1
			dst[m+kk] = t0 - t1
			if idx += unit; idx >= N {
				idx -= N
			}
		}
	case 3:
		w1, w2 := d.b3[0], d.b3[1]
		idx1, idx2 := 0, 0
		for kk := 0; kk < m; kk++ {
			t0 := dst[kk]
			t1 := dst[m+kk] * w[idx1]
			t2 := dst[2*m+kk] * w[idx2]
			dst[kk] = t0 + t1 + t2
			dst[m+kk] = t0 + t1*w1 + t2*w2
			dst[2*m+kk] = t0 + t1*w2 + t2*w1
			if idx1 += unit; idx1 >= N {
				idx1 -= N
			}
			if idx2 += 2 * unit; idx2 >= N {
				idx2 -= N
			}
		}
	default:
		var idx [5]int
		for kk := 0; kk < m; kk++ {
			t0 := dst[kk]
			t1 := dst[m+kk] * w[idx[1]]
			t2 := dst[2*m+kk] * w[idx[2]]
			t3 := dst[3*m+kk] * w[idx[3]]
			t4 := dst[4*m+kk] * w[idx[4]]
			for q := 0; q < 5; q++ {
				bw := &d.b5[q]
				dst[q*m+kk] = t0 + t1*bw[1] + t2*bw[2] + t3*bw[3] + t4*bw[4]
			}
			for j := 1; j < 5; j++ {
				if idx[j] += j * unit; idx[j] >= N {
					idx[j] -= N
				}
			}
		}
	}
}
