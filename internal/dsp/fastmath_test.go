package dsp

import (
	"math"
	"testing"
)

// TestAtan2FastAccuracy sweeps a dense quadrant grid and asserts the
// documented 1e-10 rad bound against math.Atan2.
func TestAtan2FastAccuracy(t *testing.T) {
	maxErr := 0.0
	for i := -700; i <= 700; i++ {
		for j := -700; j <= 700; j++ {
			y, x := float64(i)/180, float64(j)/180
			if x == 0 && y == 0 {
				continue
			}
			if e := math.Abs(Atan2Fast(y, x) - math.Atan2(y, x)); e > maxErr {
				maxErr = e
			}
		}
	}
	t.Logf("max |Atan2Fast-Atan2| = %.3e rad", maxErr)
	if maxErr > 1e-10 {
		t.Fatalf("Atan2Fast error %.3e exceeds 1e-10 rad", maxErr)
	}
}

// TestAtan2FastSpecials checks the fallback cases match math.Atan2 bit for
// bit (sign of zero included).
func TestAtan2FastSpecials(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := [][2]float64{
		{0, 0}, {0, math.Copysign(0, -1)}, {math.Copysign(0, -1), 0},
		{math.Copysign(0, -1), math.Copysign(0, -1)},
		{0, 1}, {math.Copysign(0, -1), 1}, {0, -1}, {math.Copysign(0, -1), -1},
		{1, 0}, {-1, 0}, {1, math.Copysign(0, -1)},
		{inf, 1}, {-inf, 1}, {1, inf}, {1, -inf}, {inf, inf}, {inf, -inf},
		{nan, 1}, {1, nan}, {nan, nan},
		{1e308, 1e308}, {-1e308, 1e-308},
	}
	for _, c := range cases {
		got, want := Atan2Fast(c[0], c[1]), math.Atan2(c[0], c[1])
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("Atan2Fast(%v, %v) = %v, want NaN", c[0], c[1], got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-10 || math.Signbit(got) != math.Signbit(want) {
			t.Errorf("Atan2Fast(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

// TestSincosFastAccuracy asserts the documented 2e-9 bound over a wide
// phase range, plus exactness of the fallbacks.
func TestSincosFastAccuracy(t *testing.T) {
	maxErr := 0.0
	for i := -600000; i <= 600000; i++ {
		phi := float64(i) / 4000 // ±150 rad
		s, c := SincosFast(phi)
		ws, wc := math.Sincos(phi)
		if e := math.Max(math.Abs(s-ws), math.Abs(c-wc)); e > maxErr {
			maxErr = e
		}
	}
	t.Logf("max SincosFast error = %.3e", maxErr)
	if maxErr > 2e-9 {
		t.Fatalf("SincosFast error %.3e exceeds 2e-9", maxErr)
	}
	// Sample the top of the fast range, where range-reduction error peaks.
	for i := 0; i < 20000; i++ {
		phi := 999900.0 + float64(i)/200
		s, c := SincosFast(phi)
		ws, wc := math.Sincos(phi)
		if e := math.Max(math.Abs(s-ws), math.Abs(c-wc)); e > 2e-9 {
			t.Fatalf("SincosFast(%v) error %.3e exceeds 2e-9 near the cutoff", phi, e)
		}
	}
	for _, phi := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e7, -1e7, 1e12, -1e12} {
		s, c := SincosFast(phi)
		ws, wc := math.Sincos(phi)
		if !(s == ws || (math.IsNaN(s) && math.IsNaN(ws))) || !(c == wc || (math.IsNaN(c) && math.IsNaN(wc))) {
			t.Errorf("SincosFast(%v) = (%v, %v), want (%v, %v)", phi, s, c, ws, wc)
		}
	}
}
