package dsp

import (
	"fmt"
	"math"
	"sync"
)

// twiddleSet holds the unit phasors of one transform size: fwd[m] =
// e^{-j2πm/N} and inv[m] = e^{+j2πm/N}. The exponent of the (k,t) term of a
// DFT is k·t mod N, so one table of N entries serves the whole O(N²)
// transform — the per-frame power-delay-profile transform in core touches no
// trig at all once its size is cached.
type twiddleSet struct {
	fwd, inv []complex128
}

// twiddleCache maps transform size → *twiddleSet. Sizes are few (the CSI
// pipeline transforms 30-point vectors) and workers are many, so a
// lock-free-on-read sync.Map fits.
var twiddleCache sync.Map

func twiddles(n int) *twiddleSet {
	if v, ok := twiddleCache.Load(n); ok {
		return v.(*twiddleSet)
	}
	ts := &twiddleSet{
		fwd: make([]complex128, n),
		inv: make([]complex128, n),
	}
	for m := 0; m < n; m++ {
		sin, cos := math.Sincos(2 * math.Pi * float64(m) / float64(n))
		ts.fwd[m] = complex(cos, -sin)
		ts.inv[m] = complex(cos, sin)
	}
	v, _ := twiddleCache.LoadOrStore(n, ts)
	return v.(*twiddleSet)
}

// DFT computes the discrete Fourier transform of x (O(n²) with cached
// twiddle factors, fine for the 30-subcarrier vectors this repository
// transforms).
//
//	X[k] = Σ_n x[n]·e^{-j2πkn/N}
func DFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	DFTInto(out, x)
	return out
}

// DFTInto is DFT writing into a caller-provided buffer of len(x), for
// allocation-free hot paths. dst and x must not alias.
func DFTInto(dst, x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	w := twiddles(n).fwd
	for k := 0; k < n; k++ {
		var sum complex128
		idx := 0
		for t := 0; t < n; t++ {
			sum += x[t] * w[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		dst[k] = sum
	}
}

// IDFT computes the inverse discrete Fourier transform with 1/N scaling so
// that IDFT(DFT(x)) == x.
func IDFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	IDFTInto(out, x)
	return out
}

// IDFTInto is IDFT writing into a caller-provided buffer of len(x), for
// allocation-free hot paths. dst and x must not alias.
func IDFTInto(dst, x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	w := twiddles(n).inv
	scale := complex(1/float64(n), 0)
	for k := 0; k < n; k++ {
		var sum complex128
		idx := 0
		for t := 0; t < n; t++ {
			sum += x[t] * w[idx]
			idx += k
			if idx >= n {
				idx -= n
			}
		}
		dst[k] = sum * scale
	}
}

// Unwrap removes 2π discontinuities from a phase sequence in place-order
// (the input is not modified; a corrected copy is returned).
func Unwrap(phase []float64) []float64 {
	out := append([]float64(nil), phase...)
	return UnwrapInPlace(out)
}

// UnwrapInPlace is Unwrap mutating its argument, for allocation-free hot
// paths. It returns the slice for convenience.
func UnwrapInPlace(out []float64) []float64 {
	for i := 1; i < len(out); i++ {
		d := out[i] - out[i-1]
		for d > math.Pi {
			out[i] -= 2 * math.Pi
			d = out[i] - out[i-1]
		}
		for d < -math.Pi {
			out[i] += 2 * math.Pi
			d = out[i] - out[i-1]
		}
	}
	return out
}

// InterpolateComplex linearly resamples samples located at xs (strictly
// increasing) onto targets. Targets outside [xs[0], xs[last]] are clamped to
// the boundary values.
func InterpolateComplex(xs []float64, ys []complex128, targets []float64) ([]complex128, error) {
	out := make([]complex128, len(targets))
	if err := InterpolateComplexInto(out, xs, ys, targets); err != nil {
		return nil, err
	}
	return out, nil
}

// InterpolateComplexInto is InterpolateComplex writing into a caller-provided
// buffer of len(targets), for allocation-free hot paths.
func InterpolateComplexInto(out []complex128, xs []float64, ys []complex128, targets []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("interpolate: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("interpolate: %w", ErrEmptyInput)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("interpolate: xs not strictly increasing at %d", i)
		}
	}
	for i, t := range targets {
		switch {
		case t <= xs[0]:
			out[i] = ys[0]
		case t >= xs[len(xs)-1]:
			out[i] = ys[len(ys)-1]
		default:
			// Binary search for the surrounding knots.
			lo, hi := 0, len(xs)-1
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if xs[mid] <= t {
					lo = mid
				} else {
					hi = mid
				}
			}
			frac := (t - xs[lo]) / (xs[hi] - xs[lo])
			out[i] = ys[lo]*complex(1-frac, 0) + ys[hi]*complex(frac, 0)
		}
	}
	return nil
}

// MovingAverage smooths xs with a centered window of the given odd width.
// Edges use the available partial window. It runs in O(n) via a prefix sum
// regardless of width.
func MovingAverage(xs []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	// prefix[i] = Σ xs[:i], so a window sum is one subtraction.
	prefix := make([]float64, len(xs)+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}
