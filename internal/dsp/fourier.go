package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DFT computes the discrete Fourier transform of x (O(n²), fine for the
// 30-subcarrier vectors this repository transforms).
//
//	X[k] = Σ_n x[n]·e^{-j2πkn/N}
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// IDFT computes the inverse discrete Fourier transform with 1/N scaling so
// that IDFT(DFT(x)) == x.
func IDFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	IDFTInto(out, x)
	return out
}

// IDFTInto is IDFT writing into a caller-provided buffer of len(x), for
// allocation-free hot paths. dst and x must not alias.
func IDFTInto(dst, x []complex128) {
	n := len(x)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		dst[k] = sum / complex(float64(n), 0)
	}
}

// Unwrap removes 2π discontinuities from a phase sequence in place-order
// (the input is not modified; a corrected copy is returned).
func Unwrap(phase []float64) []float64 {
	out := append([]float64(nil), phase...)
	return UnwrapInPlace(out)
}

// UnwrapInPlace is Unwrap mutating its argument, for allocation-free hot
// paths. It returns the slice for convenience.
func UnwrapInPlace(out []float64) []float64 {
	for i := 1; i < len(out); i++ {
		d := out[i] - out[i-1]
		for d > math.Pi {
			out[i] -= 2 * math.Pi
			d = out[i] - out[i-1]
		}
		for d < -math.Pi {
			out[i] += 2 * math.Pi
			d = out[i] - out[i-1]
		}
	}
	return out
}

// InterpolateComplex linearly resamples samples located at xs (strictly
// increasing) onto targets. Targets outside [xs[0], xs[last]] are clamped to
// the boundary values.
func InterpolateComplex(xs []float64, ys []complex128, targets []float64) ([]complex128, error) {
	out := make([]complex128, len(targets))
	if err := InterpolateComplexInto(out, xs, ys, targets); err != nil {
		return nil, err
	}
	return out, nil
}

// InterpolateComplexInto is InterpolateComplex writing into a caller-provided
// buffer of len(targets), for allocation-free hot paths.
func InterpolateComplexInto(out []complex128, xs []float64, ys []complex128, targets []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("interpolate: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("interpolate: %w", ErrEmptyInput)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("interpolate: xs not strictly increasing at %d", i)
		}
	}
	for i, t := range targets {
		switch {
		case t <= xs[0]:
			out[i] = ys[0]
		case t >= xs[len(xs)-1]:
			out[i] = ys[len(ys)-1]
		default:
			// Binary search for the surrounding knots.
			lo, hi := 0, len(xs)-1
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if xs[mid] <= t {
					lo = mid
				} else {
					hi = mid
				}
			}
			frac := (t - xs[lo]) / (xs[hi] - xs[lo])
			out[i] = ys[lo]*complex(1-frac, 0) + ys[hi]*complex(frac, 0)
		}
	}
	return nil
}

// MovingAverage smooths xs with a centered window of the given odd width.
// Edges use the available partial window.
func MovingAverage(xs []float64, width int) []float64 {
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
