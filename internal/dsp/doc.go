// Package dsp provides the scalar signal-processing toolbox used across the
// repository: descriptive statistics, empirical CDFs, discrete Fourier
// transforms, phase unwrapping, and least-squares fits (linear and
// logarithmic — the Fig. 3b/3c relationship). Everything operates on plain
// float64/complex128 slices.
//
// Hot-path callers (the Eq. 11 multipath factor in internal/core, phase
// sanitization in internal/sanitize) use the *Into/*InPlace variants
// (IDFTInto, InterpolateComplexInto, UnwrapInPlace) with caller-owned
// buffers; the allocating forms delegate to them.
package dsp
