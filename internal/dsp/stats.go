package dsp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptyInput is returned by statistics that are undefined on empty data.
var ErrEmptyInput = errors.New("dsp: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("mean: %w", ErrEmptyInput)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, fmt.Errorf("variance: %w", err)
	}
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs (average of the two central elements for
// even lengths). The input is copied; MedianInPlace is the allocation-free
// variant for hot paths.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("median: %w", ErrEmptyInput)
	}
	s := append([]float64(nil), xs...)
	return MedianInPlace(s)
}

// MedianInPlace returns the median of xs without allocating, partially
// reordering xs via quickselect (O(n) expected, versus the O(n log n) full
// sort Median pays). Both functions order NaNs first, like sort.Float64s,
// so they agree element-for-element on any input.
func MedianInPlace(xs []float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, fmt.Errorf("median: %w", ErrEmptyInput)
	}
	// NaN-free data (the overwhelmingly common case) selects with plain
	// float compares; any NaN falls back to the sort.Float64s ordering.
	clean := true
	for _, v := range xs {
		if v != v {
			clean = false
			break
		}
	}
	var upper float64
	if clean {
		upper = quickselectFast(xs, n/2)
	} else {
		upper = quickselect(xs, n/2)
	}
	if n%2 == 1 {
		return upper, nil
	}
	// Even length: the lower middle is the maximum of the left partition,
	// which quickselect left holding the n/2 smallest elements.
	lower := xs[0]
	for _, v := range xs[1 : n/2] {
		if fltLess(lower, v) {
			lower = v
		}
	}
	return (lower + upper) / 2, nil
}

// quickselectFast is quickselect for NaN-free data: plain float compares
// and a Hoare-style partition, which swaps far less than Lomuto on the
// mostly-unsorted rows the scoring loop feeds it.
func quickselectFast(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, sorted into place so xs[lo] ≤ p ≤ xs[hi].
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		// Hoare partition: after the loop, xs[lo..j] ≤ pivot ≤ xs[j+1..hi].
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if xs[i] >= pivot {
					break
				}
			}
			for {
				j--
				if xs[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xs[i], xs[j] = xs[j], xs[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return xs[k]
}

// fltLess is the sort.Float64s ordering: NaNs sort before everything. The
// x != x spelling of IsNaN keeps the comparison inlinable in the selection
// loop.
func fltLess(a, b float64) bool {
	return a < b || (a != a && b == b)
}

// quickselect partially sorts xs so that xs[k] holds the k-th smallest
// element (0-based) and xs[:k] holds only elements ≤ it, returning xs[k].
// Median-of-three pivoting keeps sorted and constant inputs at O(n).
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, moved to xs[hi].
		mid := lo + (hi-lo)/2
		if fltLess(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if fltLess(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if fltLess(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[hi]
		// Lomuto partition around the pivot.
		i := lo
		for j := lo; j < hi; j++ {
			if fltLess(xs[j], pivot) {
				xs[i], xs[j] = xs[j], xs[i]
				i++
			}
		}
		xs[i], xs[hi] = xs[hi], xs[i]
		switch {
		case k == i:
			return xs[k]
		case k < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
	return xs[k]
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("percentile: %w", ErrEmptyInput)
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("percentile %v out of [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("minmax: %w", ErrEmptyInput)
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// ArgMax returns the index of the largest element of xs.
func ArgMax(xs []float64) (int, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("argmax: %w", ErrEmptyInput)
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best, nil
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from a sample (which is copied).
func NewCDF(sample []float64) (*CDF, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("cdf: %w", ErrEmptyInput)
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &CDF{sorted: s}, nil
}

// At returns P(X ≤ x) for the empirical distribution.
func (c *CDF) At(x float64) float64 {
	// Number of samples ≤ x.
	n := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, for
// q ∈ (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Points samples the CDF at n evenly spaced values spanning the data range,
// returning (x, P(X≤x)) pairs — what a figure plots.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if n < 2 {
		n = 2
	}
	lo := c.sorted[0]
	hi := c.sorted[len(c.sorted)-1]
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}
