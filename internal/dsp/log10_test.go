package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestLog10FastAccuracy asserts the documented 2e-9 absolute bound against
// math.Log10 across the spectrum-value range the dB distance feeds it:
// log-spaced magnitudes from the 1e-30 floor to 1e30, dense random mantissas
// at every binary exponent scale, and ratios near 1 (the common quiet-window
// case, where log10 ≈ 0).
func TestLog10FastAccuracy(t *testing.T) {
	maxErr := 0.0
	check := func(x float64) {
		if e := math.Abs(Log10Fast(x) - math.Log10(x)); e > maxErr {
			maxErr = e
			if e > 2e-9 {
				t.Fatalf("Log10Fast(%v) error %.3e exceeds 2e-9", x, e)
			}
		}
	}
	// Log-spaced sweep over the floored spectrum range and beyond.
	for i := -3000; i <= 3000; i++ {
		check(math.Pow(10, float64(i)/100)) // 1e-30 … 1e30
	}
	// Random mantissas across the full exponent range.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		m := 0.5 + rng.Float64()/2 // [0.5, 1)
		e := rng.Intn(1200) - 600
		check(math.Ldexp(m, e))
	}
	// Ratios near 1: both sides of the knot where log10 crosses zero.
	for i := -100000; i <= 100000; i++ {
		check(1 + float64(i)*1e-9)
	}
	// Powers of two and ten land exactly on table knots / exponent steps.
	for e := -300; e <= 300; e++ {
		check(math.Ldexp(1, e))
		check(math.Pow(10, float64(e)))
	}
	t.Logf("max |Log10Fast-Log10| = %.3e", maxErr)
}

// TestLog10FastSpecials checks every input outside the fast range —
// non-positive, non-finite, NaN and subnormal — defers to math.Log10 bit
// for bit, and the fast-range endpoints stay within the accuracy bound.
func TestLog10FastSpecials(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	deferred := []float64{
		0, math.Copysign(0, -1), -1, -1e-300, -inf, inf, nan,
		5e-324, 1e-310, 2.2250738585072e-308, // subnormals
	}
	for _, x := range deferred {
		got, want := Log10Fast(x), math.Log10(x)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("Log10Fast(%v) = %v, want NaN", x, got)
			}
			continue
		}
		if got != want {
			t.Errorf("Log10Fast(%v) = %v, want %v (bit-exact deferral)", x, got, want)
		}
	}
	for _, x := range []float64{2.2250738585072014e-308, 1, math.MaxFloat64} {
		got, want := Log10Fast(x), math.Log10(x)
		if math.Abs(got-want) > 2e-9 {
			t.Errorf("Log10Fast(%v) = %v, want %v", x, got, want)
		}
	}
}

// BenchmarkLog10 measures the fast path against math.Log10 over the mantissa
// range the spectrum distance sweeps.
func BenchmarkLog10(b *testing.B) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range xs {
		xs[i] = math.Ldexp(0.5+rng.Float64()/2, rng.Intn(40)-20)
	}
	b.Run("math", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += math.Log10(xs[i&4095])
		}
		sinkFloat = acc
	})
	b.Run("fast", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += Log10Fast(xs[i&4095])
		}
		sinkFloat = acc
	})
}

var sinkFloat float64
