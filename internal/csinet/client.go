package csinet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"mlink/internal/csi"
)

// ErrLinkDown is the typed "transport is gone" error: a Redialer's Next
// wraps every receive failure in it, so supervision layers can match the
// condition with errors.Is regardless of the underlying cause.
var ErrLinkDown = errors.New("csinet: link down")

// Client collects CSI frames from a csinet server — the detector side of
// the distributed deployment.
//
// Recv/RecvInto are single-goroutine (the stream is ordered); Close,
// SetRecvDeadline, and LastActivity are safe from any goroutine.
type Client struct {
	conn    net.Conn
	hello   Hello
	mr      MessageReader
	lastMsg atomic.Int64 // unix nanos of the last message, heartbeats included
}

// Dial connects to a csinet server and consumes the opening Hello. The
// context bounds connection establishment and the Hello exchange.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	c := &Client{conn: conn}
	msgType, payload, err := c.mr.Read(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if msgType != TypeHello {
		conn.Close()
		return nil, fmt.Errorf("first message type %d: %w", msgType, ErrMalformed)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	c.hello = hello
	c.lastMsg.Store(time.Now().UnixNano())
	return c, nil
}

// Hello returns the stream metadata announced by the server.
func (c *Client) Hello() Hello { return c.hello }

// LastActivity is when the last message — frame or heartbeat — arrived.
// Heartbeats never surface as frames, so this is the liveness signal
// staleness detection should watch.
func (c *Client) LastActivity() time.Time {
	return time.Unix(0, c.lastMsg.Load())
}

// recvPayload blocks for the next frame message's payload (aliasing the
// client's reusable buffer). Heartbeats are consumed silently; a closed
// stream surfaces as io.EOF.
func (c *Client) recvPayload() ([]byte, error) {
	for {
		msgType, payload, err := c.mr.Read(c.conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, io.EOF
			}
			return nil, err
		}
		c.lastMsg.Store(time.Now().UnixNano())
		switch msgType {
		case TypeFrame:
			return payload, nil
		case TypeHeartbeat:
			continue
		default:
			return nil, fmt.Errorf("unexpected message type %d mid-stream: %w", msgType, ErrMalformed)
		}
	}
}

// Recv blocks for the next CSI frame, allocating a fresh one. Heartbeats
// are consumed silently; a closed stream surfaces as io.EOF. See RecvInto
// for the pooled path.
func (c *Client) Recv() (*csi.Frame, error) {
	payload, err := c.recvPayload()
	if err != nil {
		return nil, err
	}
	return DecodeFrame(payload)
}

// RecvInto blocks for the next CSI frame and decodes it into f, reusing
// its storage when the shape matches — the allocation-free ingest path
// (pair it with a csi.FramePool). Semantics otherwise match Recv.
func (c *Client) RecvInto(f *csi.Frame) error {
	payload, err := c.recvPayload()
	if err != nil {
		return err
	}
	return DecodeFrameInto(f, payload)
}

// RecvN collects exactly n frames (or fails).
func (c *Client) RecvN(n int) ([]*csi.Frame, error) {
	out := make([]*csi.Frame, 0, n)
	for len(out) < n {
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("recv %d/%d: %w", len(out), n, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// SetRecvDeadline bounds the next Recv calls.
func (c *Client) SetRecvDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
