package csinet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"mlink/internal/csi"
	"time"
)

// Client collects CSI frames from a csinet server — the detector side of
// the distributed deployment.
type Client struct {
	conn  net.Conn
	hello Hello
}

// Dial connects to a csinet server and consumes the opening Hello. The
// context bounds connection establishment and the Hello exchange.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	msgType, payload, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if msgType != TypeHello {
		conn.Close()
		return nil, fmt.Errorf("first message type %d: %w", msgType, ErrMalformed)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return &Client{conn: conn, hello: hello}, nil
}

// Hello returns the stream metadata announced by the server.
func (c *Client) Hello() Hello { return c.hello }

// Recv blocks for the next CSI frame. Heartbeats are consumed silently; a
// closed stream surfaces as io.EOF.
func (c *Client) Recv() (*csi.Frame, error) {
	for {
		msgType, payload, err := ReadMessage(c.conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, io.EOF
			}
			return nil, err
		}
		switch msgType {
		case TypeFrame:
			f, err := DecodeFrame(payload)
			if err != nil {
				return nil, err
			}
			return f, nil
		case TypeHeartbeat:
			continue
		default:
			return nil, fmt.Errorf("unexpected message type %d mid-stream: %w", msgType, ErrMalformed)
		}
	}
}

// RecvN collects exactly n frames (or fails).
func (c *Client) RecvN(n int) ([]*csi.Frame, error) {
	out := make([]*csi.Frame, 0, n)
	for len(out) < n {
		f, err := c.Recv()
		if err != nil {
			return nil, fmt.Errorf("recv %d/%d: %w", len(out), n, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// SetRecvDeadline bounds the next Recv calls.
func (c *Client) SetRecvDeadline(t time.Time) error {
	return c.conn.SetReadDeadline(t)
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }
