package csinet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"mlink/internal/csi"
)

// Protocol constants.
const (
	// Magic marks every message ("CSIL").
	Magic uint32 = 0x4353494C
	// Version is the wire protocol version.
	Version byte = 1
	// MaxPayload bounds decodable payloads (a 16×256 CSI frame is ~64 KiB;
	// 1 MiB leaves ample headroom while stopping corrupt lengths).
	MaxPayload = 1 << 20
)

// Message types.
const (
	// TypeHello opens a stream with link metadata.
	TypeHello byte = iota + 1
	// TypeFrame carries one CSI frame.
	TypeFrame
	// TypeHeartbeat keeps idle connections alive.
	TypeHeartbeat
)

// Wire-protocol errors.
var (
	ErrBadMagic   = errors.New("csinet: bad magic")
	ErrBadVersion = errors.New("csinet: unsupported version")
	ErrBadCRC     = errors.New("csinet: payload checksum mismatch")
	ErrTooLarge   = errors.New("csinet: payload too large")
	ErrMalformed  = errors.New("csinet: malformed payload")
)

// Hello is the stream-opening metadata message.
type Hello struct {
	// CenterFreqHz is the carrier centre frequency.
	CenterFreqHz float64
	// NumAntennas and NumSubcarriers describe frame shapes.
	NumAntennas    uint8
	NumSubcarriers uint8
	// Indices are the subcarrier indices.
	Indices []int16
}

// EncodeHello serializes a Hello payload.
func EncodeHello(h Hello) ([]byte, error) {
	if int(h.NumSubcarriers) != len(h.Indices) {
		return nil, fmt.Errorf("%d indices for %d subcarriers: %w", len(h.Indices), h.NumSubcarriers, ErrMalformed)
	}
	buf := make([]byte, 0, 10+2*len(h.Indices))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(h.CenterFreqHz))
	buf = append(buf, h.NumAntennas, h.NumSubcarriers)
	for _, idx := range h.Indices {
		buf = binary.BigEndian.AppendUint16(buf, uint16(idx))
	}
	return buf, nil
}

// DecodeHello parses a Hello payload.
func DecodeHello(b []byte) (Hello, error) {
	if len(b) < 10 {
		return Hello{}, fmt.Errorf("hello of %d bytes: %w", len(b), ErrMalformed)
	}
	h := Hello{
		CenterFreqHz:   math.Float64frombits(binary.BigEndian.Uint64(b[0:8])),
		NumAntennas:    b[8],
		NumSubcarriers: b[9],
	}
	want := 10 + 2*int(h.NumSubcarriers)
	if len(b) != want {
		return Hello{}, fmt.Errorf("hello length %d, want %d: %w", len(b), want, ErrMalformed)
	}
	h.Indices = make([]int16, h.NumSubcarriers)
	for i := range h.Indices {
		h.Indices[i] = int16(binary.BigEndian.Uint16(b[10+2*i:]))
	}
	return h, nil
}

// EncodeFrame serializes a CSI frame payload:
// seq(4) | tsMicros(8) | nAnt(1) | nSub(1) | rssi(8·nAnt) | csi(16·nAnt·nSub).
func EncodeFrame(f *csi.Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	nAnt := f.NumAntennas()
	nSub := f.NumSubcarriers()
	if nAnt > 255 || nSub > 255 {
		return nil, fmt.Errorf("frame %dx%d exceeds wire limits: %w", nAnt, nSub, ErrMalformed)
	}
	buf := make([]byte, 0, 14+8*nAnt+16*nAnt*nSub)
	buf = binary.BigEndian.AppendUint32(buf, f.Seq)
	buf = binary.BigEndian.AppendUint64(buf, f.TimestampMicros)
	buf = append(buf, byte(nAnt), byte(nSub))
	for _, r := range f.RSSI {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(r))
	}
	for _, row := range f.CSI {
		for _, v := range row {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(real(v)))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(imag(v)))
		}
	}
	return buf, nil
}

// DecodeFrameInto parses a CSI frame payload into a caller-provided frame,
// reusing its RSSI and CSI storage when the shape matches (the pooled
// ingest path). On a shape change the rows are rebuilt as slices of one
// contiguous backing array, NewFrame's layout.
func DecodeFrameInto(f *csi.Frame, b []byte) error {
	if len(b) < 14 {
		return fmt.Errorf("frame of %d bytes: %w", len(b), ErrMalformed)
	}
	nAnt := int(b[12])
	nSub := int(b[13])
	want := 14 + 8*nAnt + 16*nAnt*nSub
	if len(b) != want {
		return fmt.Errorf("frame length %d, want %d: %w", len(b), want, ErrMalformed)
	}
	if nAnt == 0 || nSub == 0 {
		return fmt.Errorf("empty frame dimensions: %w", ErrMalformed)
	}
	f.Seq = binary.BigEndian.Uint32(b[0:4])
	f.TimestampMicros = binary.BigEndian.Uint64(b[4:12])
	if len(f.RSSI) != nAnt {
		f.RSSI = make([]float64, nAnt)
	}
	reshape := len(f.CSI) != nAnt
	if !reshape {
		for _, row := range f.CSI {
			if len(row) != nSub {
				reshape = true
				break
			}
		}
	}
	if reshape {
		backing := make([]complex128, nAnt*nSub)
		f.CSI = make([][]complex128, nAnt)
		for i := range f.CSI {
			f.CSI[i] = backing[i*nSub : (i+1)*nSub : (i+1)*nSub]
		}
	}
	off := 14
	for i := range f.RSSI {
		f.RSSI[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	for a := 0; a < nAnt; a++ {
		row := f.CSI[a]
		for k := 0; k < nSub; k++ {
			re := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
			im := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
			row[k] = complex(re, im)
			off += 16
		}
	}
	return nil
}

// DecodeFrame parses a CSI frame payload.
func DecodeFrame(b []byte) (*csi.Frame, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("frame of %d bytes: %w", len(b), ErrMalformed)
	}
	f := &csi.Frame{
		Seq:             binary.BigEndian.Uint32(b[0:4]),
		TimestampMicros: binary.BigEndian.Uint64(b[4:12]),
	}
	nAnt := int(b[12])
	nSub := int(b[13])
	want := 14 + 8*nAnt + 16*nAnt*nSub
	if len(b) != want {
		return nil, fmt.Errorf("frame length %d, want %d: %w", len(b), want, ErrMalformed)
	}
	if nAnt == 0 || nSub == 0 {
		return nil, fmt.Errorf("empty frame dimensions: %w", ErrMalformed)
	}
	off := 14
	f.RSSI = make([]float64, nAnt)
	for i := range f.RSSI {
		f.RSSI[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	f.CSI = make([][]complex128, nAnt)
	for a := 0; a < nAnt; a++ {
		row := make([]complex128, nSub)
		for k := 0; k < nSub; k++ {
			re := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
			im := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
			row[k] = complex(re, im)
			off += 16
		}
		f.CSI[a] = row
	}
	return f, nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("payload %d bytes: %w", len(payload), ErrTooLarge)
	}
	header := make([]byte, 0, 10)
	header = binary.BigEndian.AppendUint32(header, Magic)
	header = append(header, Version, msgType)
	header = binary.BigEndian.AppendUint32(header, uint32(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("write payload: %w", err)
		}
	}
	sum := make([]byte, 0, 4)
	sum = binary.BigEndian.AppendUint32(sum, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum); err != nil {
		return fmt.Errorf("write checksum: %w", err)
	}
	return nil
}

// ReadMessage reads and verifies one message.
func ReadMessage(r io.Reader) (msgType byte, payload []byte, err error) {
	var mr MessageReader
	t, p, err := mr.Read(r)
	if err != nil {
		return 0, nil, err
	}
	// The scratch buffer belongs to the throwaway reader, so handing it out
	// is safe — this is the allocating convenience path.
	return t, p, nil
}

// MessageReader reads framed messages with reusable header/payload scratch,
// so a long-lived connection's receive loop stops allocating per message.
// The payload returned by Read aliases the reader's buffer and is valid
// only until the next Read. Not safe for concurrent use.
type MessageReader struct {
	hdr     [10]byte
	sum     [4]byte
	payload []byte
}

// Read reads and verifies one message, reusing internal buffers.
func (mr *MessageReader) Read(r io.Reader) (msgType byte, payload []byte, err error) {
	header := mr.hdr[:]
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, fmt.Errorf("read header: %w", err)
	}
	if binary.BigEndian.Uint32(header[0:4]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if header[4] != Version {
		return 0, nil, fmt.Errorf("version %d: %w", header[4], ErrBadVersion)
	}
	msgType = header[5]
	n := binary.BigEndian.Uint32(header[6:10])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("payload %d bytes: %w", n, ErrTooLarge)
	}
	if uint32(cap(mr.payload)) < n {
		mr.payload = make([]byte, n)
	}
	payload = mr.payload[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("read payload: %w", err)
	}
	if _, err := io.ReadFull(r, mr.sum[:]); err != nil {
		return 0, nil, fmt.Errorf("read checksum: %w", err)
	}
	if binary.BigEndian.Uint32(mr.sum[:]) != crc32.ChecksumIEEE(payload) {
		return 0, nil, ErrBadCRC
	}
	return msgType, payload, nil
}
