package csinet

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"mlink/internal/csi"
)

// testHello returns minimal valid stream metadata.
func testHello() Hello {
	return Hello{CenterFreqHz: 2.4e9, NumAntennas: 1, NumSubcarriers: 2, Indices: []int16{-1, 1}}
}

// testFrame returns a minimal valid frame.
func testFrame() *csi.Frame {
	f := csi.NewFrame(1, 2)
	f.CSI[0][0], f.CSI[0][1] = 1+2i, 3-4i
	f.RSSI[0] = -40
	return f
}

// rawServer accepts one connection and hands it to fn.
func rawServer(t *testing.T, fn func(conn net.Conn)) net.Addr {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(conn)
	}()
	return lis.Addr()
}

func dialT(t *testing.T, addr net.Addr) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := Dial(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientServerClosesMidStream: a server that dies between frames must
// surface as a clean io.EOF on the next Recv — including when the
// connection drops mid-message (a torn header or payload is an
// ErrUnexpectedEOF underneath, which the client folds into EOF so callers
// have exactly one end-of-stream signal).
func TestClientServerClosesMidStream(t *testing.T) {
	hello, err := EncodeHello(testHello())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("between frames", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			_ = WriteMessage(conn, TypeFrame, frame)
			// Abrupt close: no heartbeat, no goodbye.
		})
		c := dialT(t, addr)
		if _, err := c.Recv(); err != nil {
			t.Fatalf("first frame: %v", err)
		}
		if _, err := c.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("recv after close = %v, want io.EOF", err)
		}
	})
	t.Run("mid message", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			// Start a frame message but cut the connection after half the
			// payload.
			header := []byte{0x43, 0x53, 0x49, 0x4C, Version, TypeFrame, 0, 0, 0, byte(len(frame))}
			_, _ = conn.Write(header)
			_, _ = conn.Write(frame[:len(frame)/2])
		})
		c := dialT(t, addr)
		if _, err := c.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("recv of torn message = %v, want io.EOF", err)
		}
	})
	t.Run("recvn reports progress", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			_ = WriteMessage(conn, TypeFrame, frame)
			_ = WriteMessage(conn, TypeFrame, frame)
		})
		c := dialT(t, addr)
		if _, err := c.RecvN(5); !errors.Is(err, io.EOF) {
			t.Fatalf("recvn past close = %v, want io.EOF", err)
		}
	})
}

// TestClientShortAndCorruptFrames: malformed payloads must surface as typed
// protocol errors, not be silently skipped and not crash the decoder.
func TestClientShortAndCorruptFrames(t *testing.T) {
	hello, err := EncodeHello(testHello())
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	t.Run("short frame payload", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			// A syntactically complete message whose frame payload is
			// truncated: the length prefix and CRC are consistent, but the
			// frame inside is short.
			_ = WriteMessage(conn, TypeFrame, frame[:len(frame)-8])
			time.Sleep(50 * time.Millisecond)
		})
		c := dialT(t, addr)
		if _, err := c.Recv(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("short frame err = %v, want ErrMalformed", err)
		}
	})
	t.Run("corrupt checksum", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			// Hand-write a frame message with a bad CRC.
			header := []byte{0x43, 0x53, 0x49, 0x4C, Version, TypeFrame, 0, 0, 0, byte(len(frame))}
			_, _ = conn.Write(header)
			_, _ = conn.Write(frame)
			_, _ = conn.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF})
			time.Sleep(50 * time.Millisecond)
		})
		c := dialT(t, addr)
		if _, err := c.Recv(); !errors.Is(err, ErrBadCRC) {
			t.Fatalf("corrupt payload err = %v, want ErrBadCRC", err)
		}
	})
	t.Run("unexpected message type", func(t *testing.T) {
		addr := rawServer(t, func(conn net.Conn) {
			_ = WriteMessage(conn, TypeHello, hello)
			_ = WriteMessage(conn, 0x7F, nil)
			time.Sleep(50 * time.Millisecond)
		})
		c := dialT(t, addr)
		if _, err := c.Recv(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("unknown type err = %v, want ErrMalformed", err)
		}
	})
}

// TestClientReconnect: after a server restart the collector dials again and
// resumes — each connection gets a fresh source from the factory.
func TestClientReconnect(t *testing.T) {
	newServer := func() *Server {
		srv, err := NewServer("127.0.0.1:0", testHello(), func() Source {
			n := 0
			return SourceFunc(func() (*csi.Frame, error) {
				if n >= 3 {
					return nil, io.EOF
				}
				n++
				return testFrame(), nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(context.Background()) //nolint:errcheck — ends on Close
		return srv
	}

	srv := newServer()
	c := dialT(t, srv.Addr())
	if _, err := c.RecvN(3); err != nil {
		t.Fatalf("first connection: %v", err)
	}
	// The server dies; in-flight reads end with EOF.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("recv after server death = %v, want io.EOF", err)
	}

	// The daemon comes back (new address — a restart, not a transparent
	// failover); the collector reconnects and streams again.
	srv2 := newServer()
	defer srv2.Close()
	c2 := dialT(t, srv2.Addr())
	if c2.Hello().NumSubcarriers != 2 {
		t.Fatalf("reconnect hello = %+v", c2.Hello())
	}
	frames, err := c2.RecvN(3)
	if err != nil {
		t.Fatalf("reconnected stream: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames after reconnect", len(frames))
	}
}
