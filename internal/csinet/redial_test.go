package csinet

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/csi"
)

func TestDecodeFrameIntoReusesBuffers(t *testing.T) {
	src := sampleFrame(9)
	b, err := EncodeFrame(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := csi.NewFrame(3, 30)
	rssiPtr := &dst.RSSI[0]
	csiPtr := &dst.CSI[0][0]
	if err := DecodeFrameInto(dst, b); err != nil {
		t.Fatal(err)
	}
	if &dst.RSSI[0] != rssiPtr || &dst.CSI[0][0] != csiPtr {
		t.Fatal("matching-shape decode reallocated the frame's buffers")
	}
	if dst.Seq != src.Seq || dst.TimestampMicros != src.TimestampMicros {
		t.Fatalf("metadata mismatch: %+v", dst)
	}
	for a := range src.CSI {
		if dst.RSSI[a] != src.RSSI[a] {
			t.Fatalf("rssi[%d] mismatch", a)
		}
		for k := range src.CSI[a] {
			if dst.CSI[a][k] != src.CSI[a][k] {
				t.Fatalf("csi[%d][%d] mismatch", a, k)
			}
		}
	}

	// A wrong-shape destination is rebuilt rather than rejected.
	small := csi.NewFrame(1, 4)
	if err := DecodeFrameInto(small, b); err != nil {
		t.Fatal(err)
	}
	if small.NumAntennas() != 3 || small.NumSubcarriers() != 30 {
		t.Fatalf("reshaped frame is %dx%d", small.NumAntennas(), small.NumSubcarriers())
	}
}

func TestClientRecvInto(t *testing.T) {
	const total = 8
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			if n >= total {
				return nil, io.EOF
			}
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck — returns on Close

	c := dialT(t, srv.Addr())
	defer c.Close()
	f := csi.NewFrame(3, 30)
	csiPtr := &f.CSI[0][0]
	for i := uint32(0); i < total; i++ {
		if err := c.RecvInto(f); err != nil {
			t.Fatalf("RecvInto %d: %v", i, err)
		}
		if f.Seq != i {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
	}
	if &f.CSI[0][0] != csiPtr {
		t.Fatal("RecvInto reallocated the caller's frame")
	}
	if err := c.RecvInto(f); !errors.Is(err, io.EOF) {
		t.Fatalf("RecvInto after stream end = %v, want io.EOF", err)
	}
	if c.LastActivity().IsZero() {
		t.Fatal("LastActivity never recorded")
	}
}

// TestRedialerReconnectsAcrossRestart kills the server mid-stream and
// restarts it on the same address: Next must fail with ErrLinkDown, and
// Reconnect must re-dial, re-handshake, and resume pooled delivery.
func TestRedialerReconnectsAcrossRestart(t *testing.T) {
	newServer := func(addr string) *Server {
		srv, err := NewServer(addr, defaultHello(), func() Source {
			n := uint32(0)
			return SourceFunc(func() (*csi.Frame, error) {
				f := sampleFrame(n)
				n++
				return f, nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(context.Background()) //nolint:errcheck — ends on Close
		return srv
	}
	srv := newServer("127.0.0.1:0")
	addr := srv.Addr().String()

	r := Redial(addr)
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if h, ok := r.Hello(); !ok || h.NumAntennas != 3 {
		t.Fatalf("hello after connect = %+v, %v", h, ok)
	}
	for i := 0; i < 3; i++ {
		f, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		r.Recycle(f)
	}
	if r.LastActivity().IsZero() {
		t.Fatal("no activity recorded while streaming")
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The dead transport surfaces as a typed link-down error once the
	// frames already in the socket buffers are drained...
	var nextErr error
	drainDeadline := time.Now().Add(10 * time.Second)
	for nextErr == nil {
		if time.Now().After(drainDeadline) {
			t.Fatal("Next kept succeeding after server death")
		}
		var f *csi.Frame
		if f, nextErr = r.Next(); nextErr == nil {
			r.Recycle(f)
		}
	}
	if !errors.Is(nextErr, ErrLinkDown) {
		t.Fatalf("Next after server death = %v, want ErrLinkDown", nextErr)
	}
	// ...and stays typed while the peer is away.
	if _, err := r.Next(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("Next while down = %v, want ErrLinkDown", err)
	}

	srv2 := newServer(addr)
	defer srv2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := r.Reconnect(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected to the restarted server")
		}
		time.Sleep(20 * time.Millisecond)
	}
	f, err := r.Next()
	if err != nil {
		t.Fatalf("Next after reconnect: %v", err)
	}
	if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
		t.Fatalf("reconnected frame shape %dx%d", f.NumAntennas(), f.NumSubcarriers())
	}
	r.Recycle(f)
}

// TestServerDisconnectsSlowClient wedges one client (it connects and never
// reads) while a healthy client streams: the write deadline must disconnect
// the wedged client instead of blocking its stream goroutine forever.
func TestServerDisconnectsSlowClient(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.WriteTimeout = 100 * time.Millisecond
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck — returns on Close

	// The wedge: a raw TCP connection that never reads a byte, so the
	// server's writes back up until the deadline trips.
	wedged, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()

	healthy := dialT(t, srv.Addr())
	defer healthy.Close()

	var healthyFrames atomic.Uint64
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		f := csi.NewFrame(3, 30)
		for healthyFrames.Load() < 300 {
			if err := healthy.RecvInto(f); err != nil {
				return
			}
			healthyFrames.Add(1)
		}
	}()

	// The healthy client must stream freely the whole time the wedged one
	// is backing up, and the server must shed the wedged client.
	deadline := time.Now().Add(15 * time.Second)
	for srv.ClientCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("both clients never connected (%d clients)", srv.ClientCount())
		}
		time.Sleep(time.Millisecond)
	}
	for srv.ClientCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("wedged client never disconnected (%d clients)", srv.ClientCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	<-stop
	if got := healthyFrames.Load(); got < 300 {
		t.Fatalf("healthy client got %d frames, want 300", got)
	}
}
