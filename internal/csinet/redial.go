package csinet

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"mlink/internal/csi"
)

// DefaultRedialTimeout bounds one reconnect attempt when the caller's
// context carries no deadline of its own.
const DefaultRedialTimeout = 5 * time.Second

// Redialer is a reconnectable frame source over a csinet client: Next
// yields pooled frames from the current connection and degrades to a typed
// ErrLinkDown when the transport fails, and Reconnect re-establishes it.
// It implements the supervision layer's Source, Reconnector, Interrupter,
// ActivityReporter, and frame-recycler contracts, so a supervised engine
// link backed by a Redialer survives collector restarts with jittered
// backoff instead of dying on the first broken read.
//
// Concurrency: Next and Reconnect belong to one goroutine (the
// supervisor's producer); Interrupt, LastActivity, Recycle, and Close are
// safe from any goroutine.
type Redialer struct {
	addr    string
	timeout time.Duration

	c    atomic.Pointer[Client]
	pool atomic.Pointer[csi.FramePool]

	// Announced shape of the last successful connection; producer-owned
	// (only Reconnect reads and writes it).
	helloAnt, helloSub uint8
}

// Redial prepares a redialing source for addr without connecting; the
// first Connect (or Reconnect) establishes the stream.
func Redial(addr string) *Redialer {
	return &Redialer{addr: addr, timeout: DefaultRedialTimeout}
}

// Connect establishes the initial connection. Synonymous with Reconnect,
// named for call-site clarity.
func (r *Redialer) Connect(ctx context.Context) error { return r.Reconnect(ctx) }

// Reconnect dials the server again, replacing any previous connection. A
// context without a deadline gets DefaultRedialTimeout. On success the
// frame pool is kept when the announced shape is unchanged (the pool
// itself rejects mismatched frames, so a shape change just rebuilds it).
func (r *Redialer) Reconnect(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	c, err := Dial(ctx, r.addr)
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	h := c.Hello()
	if r.pool.Load() == nil || r.helloAnt != h.NumAntennas || r.helloSub != h.NumSubcarriers {
		r.pool.Store(csi.NewFramePool(int(h.NumAntennas), int(h.NumSubcarriers)))
	}
	r.helloAnt, r.helloSub = h.NumAntennas, h.NumSubcarriers
	if old := r.c.Swap(c); old != nil {
		old.Close()
	}
	return nil
}

// Next receives one frame from the current connection into a pooled frame.
// Any receive failure — including a clean peer close — tears the
// connection down and returns an error matching ErrLinkDown; the caller
// (typically a supervisor) decides when to Reconnect.
func (r *Redialer) Next() (*csi.Frame, error) {
	c := r.c.Load()
	if c == nil {
		return nil, fmt.Errorf("%s not connected: %w", r.addr, ErrLinkDown)
	}
	f := r.pool.Load().Get()
	if err := c.RecvInto(f); err != nil {
		r.pool.Load().Put(f)
		if r.c.CompareAndSwap(c, nil) {
			c.Close()
		}
		return nil, fmt.Errorf("%s: %v: %w", r.addr, err, ErrLinkDown)
	}
	return f, nil
}

// Recycle returns a frame to the pool for a future Next.
func (r *Redialer) Recycle(f *csi.Frame) {
	if p := r.pool.Load(); p != nil {
		p.Put(f)
	}
}

// Interrupt unblocks a pending Next by closing the current connection; the
// read then fails with ErrLinkDown (or the caller's shutdown wins first).
func (r *Redialer) Interrupt() {
	if c := r.c.Load(); c != nil {
		c.Close()
	}
}

// LastActivity reports the current connection's last message time —
// heartbeats included — or the zero time when disconnected.
func (r *Redialer) LastActivity() time.Time {
	if c := r.c.Load(); c != nil {
		return c.LastActivity()
	}
	return time.Time{}
}

// Hello returns the most recent connection's announced metadata and
// whether a connection has ever been established.
func (r *Redialer) Hello() (Hello, bool) {
	if c := r.c.Load(); c != nil {
		return c.Hello(), true
	}
	return Hello{}, false
}

// Close tears down the current connection, if any.
func (r *Redialer) Close() error {
	if c := r.c.Swap(nil); c != nil {
		return c.Close()
	}
	return nil
}
