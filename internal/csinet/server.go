package csinet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mlink/internal/csi"
)

// Source produces the CSI frames a stream serves. Next returns io.EOF to
// end the stream cleanly.
type Source interface {
	Next() (*csi.Frame, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (*csi.Frame, error)

// Next calls the function.
func (f SourceFunc) Next() (*csi.Frame, error) { return f() }

// Server streams CSI frames to TCP clients — the emulated receiver-NIC
// daemon. Every accepted connection gets its own Source from the factory,
// so concurrent clients receive independent streams.
type Server struct {
	hello   Hello
	factory func() Source
	// Interval paces frame delivery (0 = as fast as the source produces;
	// 20 ms reproduces the paper's 50 packets/s).
	Interval time.Duration
	// WriteTimeout bounds each message write, so one wedged client — a
	// dashboard that stopped reading while the kernel buffers fill — stalls
	// only its own stream goroutine and only until the deadline trips,
	// never the source or the other clients. 0 selects
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration

	lis    net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and serves a fresh Source
// per connection. Call Serve to accept clients and Close to shut down.
func NewServer(addr string, hello Hello, factory func() Source) (*Server, error) {
	if factory == nil {
		return nil, errors.New("csinet: nil source factory")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return &Server{
		hello:   hello,
		factory: factory,
		lis:     lis,
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// DefaultWriteTimeout is the per-message write deadline when
// Server.WriteTimeout is left zero.
const DefaultWriteTimeout = 30 * time.Second

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// ClientCount reports the number of currently connected clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Serve accepts connections until ctx is cancelled or Close is called. It
// always returns a non-nil error (net.ErrClosed on clean shutdown).
func (s *Server) Serve(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.lis.Close()
		case <-done:
		}
	}()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.stream(ctx, conn)
		}()
	}
}

// stream serves one client until the source ends, the client leaves, or the
// context is cancelled.
func (s *Server) stream(ctx context.Context, conn net.Conn) {
	wt := s.WriteTimeout
	if wt == 0 {
		wt = DefaultWriteTimeout
	}
	// send applies the write deadline per message: a client that stopped
	// reading makes the write block only until the deadline trips, which
	// errors the write and ends this stream goroutine — the wedged client
	// is disconnected instead of wedging the server.
	send := func(msgType byte, payload []byte) error {
		if wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		return WriteMessage(conn, msgType, payload)
	}
	hello, err := EncodeHello(s.hello)
	if err != nil {
		return
	}
	if err := send(TypeHello, hello); err != nil {
		return
	}
	src := s.factory()
	var ticker *time.Ticker
	if s.Interval > 0 {
		ticker = time.NewTicker(s.Interval)
		defer ticker.Stop()
	}
	for {
		if ctx.Err() != nil {
			return
		}
		frame, err := src.Next()
		if err != nil {
			// Clean end of stream: tell the client via heartbeat-then-close.
			if errors.Is(err, io.EOF) {
				_ = send(TypeHeartbeat, nil)
			}
			return
		}
		payload, err := EncodeFrame(frame)
		if err != nil {
			return
		}
		if err := send(TypeFrame, payload); err != nil {
			return
		}
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return
			}
		}
	}
}

// Close stops accepting, closes every live connection and waits for the
// stream goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}
