// Package csinet is the distributed CSI collection layer: it plays the role
// the Linux CSI Tool's netlink/socket export plays in the paper's testbed
// (§V-A), but over TCP so a receiver daemon (cmd/csid) can stream CSI
// frames to a detached detector process (cmd/mlink-detect), or feed links
// of the multi-link monitoring engine (internal/engine) on another host.
//
// Wire format: every message is
//
//	magic(4) | version(1) | type(1) | payloadLen(4, big endian) | payload | crc32(4)
//
// with the IEEE CRC-32 computed over the payload. Streams open with a Hello
// message describing the link (centre frequency, antenna count, subcarrier
// indices) followed by Frame messages; Heartbeats keep idle streams alive.
// Server serves a fresh Source per accepted connection; Client.Recv yields
// decoded frames and surfaces a clean end of stream as io.EOF.
//
// Both ends are hardened for long-lived deployments. On the receive side,
// Client.RecvInto decodes into a caller-owned frame and NewFramePool-backed
// Client.Next/Recycle reuse pooled frames, so a steady stream allocates
// nothing per frame; transport failures surface as the typed ErrLinkDown.
// Redialer wraps a Client with address-keeping reconnect support (the
// supervise.Reconnector contract), so a monitoring engine can redial a
// restarted collector without tearing the link down. On the serve side,
// Server.WriteTimeout bounds how long a wedged client that stops reading
// can back up a stream goroutine: the write deadline trips, the client is
// dropped, and every other client keeps streaming.
package csinet
