// Package csinet is the distributed CSI collection layer: it plays the role
// the Linux CSI Tool's netlink/socket export plays in the paper's testbed
// (§V-A), but over TCP so a receiver daemon (cmd/csid) can stream CSI
// frames to a detached detector process (cmd/mlink-detect), or feed links
// of the multi-link monitoring engine (internal/engine) on another host.
//
// Wire format: every message is
//
//	magic(4) | version(1) | type(1) | payloadLen(4, big endian) | payload | crc32(4)
//
// with the IEEE CRC-32 computed over the payload. Streams open with a Hello
// message describing the link (centre frequency, antenna count, subcarrier
// indices) followed by Frame messages; Heartbeats keep idle streams alive.
// Server serves a fresh Source per accepted connection; Client.Recv yields
// decoded frames and surfaces a clean end of stream as io.EOF.
package csinet
