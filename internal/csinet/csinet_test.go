package csinet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"mlink/internal/csi"
)

func sampleFrame(seq uint32) *csi.Frame {
	f := &csi.Frame{
		Seq:             seq,
		TimestampMicros: uint64(seq) * 20000,
		CSI:             make([][]complex128, 3),
		RSSI:            []float64{-40.5, -41.25, -39.75},
	}
	rng := rand.New(rand.NewSource(int64(seq)))
	for a := range f.CSI {
		f.CSI[a] = make([]complex128, 30)
		for k := range f.CSI[a] {
			f.CSI[a][k] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return f
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame(7)
	b, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.TimestampMicros != f.TimestampMicros {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for a := range f.CSI {
		if got.RSSI[a] != f.RSSI[a] {
			t.Fatalf("rssi[%d] mismatch", a)
		}
		for k := range f.CSI[a] {
			if got.CSI[a][k] != f.CSI[a][k] {
				t.Fatalf("csi[%d][%d] mismatch", a, k)
			}
		}
	}
}

func TestEncodeFrameRejectsInvalid(t *testing.T) {
	if _, err := EncodeFrame(&csi.Frame{}); err == nil {
		t.Fatal("empty frame encoded")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short frame err = %v", err)
	}
	good, err := EncodeFrame(sampleFrame(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(good[:len(good)-3]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated frame err = %v", err)
	}
	// Zero-dimension frame body.
	zero := make([]byte, 14)
	if _, err := DecodeFrame(zero); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-dim err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		CenterFreqHz:   2.462e9,
		NumAntennas:    3,
		NumSubcarriers: 4,
		Indices:        []int16{-28, -1, 1, 28},
	}
	b, err := EncodeHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.CenterFreqHz != h.CenterFreqHz || got.NumAntennas != 3 {
		t.Fatalf("hello mismatch: %+v", got)
	}
	for i := range h.Indices {
		if got.Indices[i] != h.Indices[i] {
			t.Fatalf("index %d mismatch: %d vs %d", i, got.Indices[i], h.Indices[i])
		}
	}
}

func TestHelloErrors(t *testing.T) {
	if _, err := EncodeHello(Hello{NumSubcarriers: 3, Indices: []int16{1}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mismatched hello err = %v", err)
	}
	if _, err := DecodeHello([]byte{1}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short hello err = %v", err)
	}
	if _, err := DecodeHello(make([]byte, 12)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("wrong-length hello err = %v", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello csi")
	if err := WriteMessage(&buf, TypeFrame, payload); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != TypeFrame || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip = %d %q", msgType, got)
	}
}

func TestMessageEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeHeartbeat, nil); err != nil {
		t.Fatal(err)
	}
	msgType, got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != TypeHeartbeat || len(got) != 0 {
		t.Fatalf("heartbeat = %d %v", msgType, got)
	}
}

func TestMessageCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeFrame, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Corrupt magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	// Corrupt version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version err = %v", err)
	}
	// Corrupt payload → CRC failure.
	bad = append([]byte(nil), raw...)
	bad[12] ^= 0xFF
	if _, _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("bad crc err = %v", err)
	}
	// Truncated stream.
	if _, _, err := ReadMessage(bytes.NewReader(raw[:5])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestWriteMessageTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, TypeFrame, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize err = %v", err)
	}
}

func defaultHello() Hello {
	idx := make([]int16, 30)
	for i := range idx {
		idx[i] = int16(i)
	}
	return Hello{CenterFreqHz: 2.462e9, NumAntennas: 3, NumSubcarriers: 30, Indices: idx}
}

func TestServerClientStream(t *testing.T) {
	const total = 12
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			if n >= total {
				return nil, io.EOF
			}
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck — returns on Close

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if client.Hello().NumAntennas != 3 {
		t.Fatalf("hello = %+v", client.Hello())
	}
	frames, err := client.RecvN(total)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if f.Seq != uint32(i) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
		if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
			t.Fatalf("frame %d shape %dx%d", i, f.NumAntennas(), f.NumSubcarriers())
		}
	}
	// After the source ends, the stream closes: Recv returns EOF.
	if err := client.SetRecvDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("post-stream recv err = %v, want EOF", err)
	}
}

func TestServerMultipleClients(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Both clients must independently receive seq 0,1,2... (own sources).
	for i := 0; i < 2; i++ {
		client, err := Dial(ctx, srv.Addr().String())
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		frames, err := client.RecvN(3)
		if err != nil {
			t.Fatalf("client %d recv: %v", i, err)
		}
		for j, f := range frames {
			if f.Seq != uint32(j) {
				t.Fatalf("client %d frame %d seq %d", i, j, f.Seq)
			}
		}
		client.Close()
	}
}

func TestServerGracefulClose(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.RecvN(2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil && !errors.Is(err, io.EOF) {
		t.Logf("close: %v", err)
	}
	select {
	case <-served:
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Client eventually sees EOF.
	if err := client.SetRecvDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := client.Recv(); err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			// A reset is acceptable on abrupt close of a full pipe.
			return
		}
	}
}

func TestServerContextCancel(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		return SourceFunc(func() (*csi.Frame, error) { return sampleFrame(0), nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-served:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serve err = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not exit on context cancel")
	}
}

func TestDialErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestNewServerNilFactory(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", defaultHello(), nil); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestServerPacing(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", defaultHello(), func() Source {
		n := uint32(0)
		return SourceFunc(func() (*csi.Frame, error) {
			f := sampleFrame(n)
			n++
			return f, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Interval = 10 * time.Millisecond
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := Dial(ctx, srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	if _, err := client.RecvN(5); err != nil {
		t.Fatal(err)
	}
	// 5 frames at 10 ms pacing need ≥ ~40 ms (first frame unpaced).
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("pacing too fast: %v", elapsed)
	}
}
