package fleet

import (
	"testing"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/engine"
)

// recorder is a fake actuator capturing the coordinator's control calls.
type recorder struct {
	suppressed map[string]bool
	relocked   map[string]int
	recals     []string
}

func newRecorder() *recorder {
	return &recorder{suppressed: make(map[string]bool), relocked: make(map[string]int)}
}

func (r *recorder) SuppressRefresh(id string, on bool) error {
	r.suppressed[id] = on
	return nil
}

func (r *recorder) RelockLink(id string) error {
	r.relocked[id]++
	return nil
}

func (r *recorder) RequestRecalibration(id string, packets int) error {
	r.recals = append(r.recals, id)
	return nil
}

// RecalibrationPending: the fake's rebuilds complete instantly.
func (r *recorder) RecalibrationPending(string) bool { return false }

// verdict builds a fused snapshot from per-link (health, present) pairs.
func verdict(links ...engine.LinkDecision) *engine.SiteVerdict {
	present := false
	positive := 0
	for _, l := range links {
		if l.Present {
			present = true
			positive++
		}
	}
	return &engine.SiteVerdict{Present: present, Positive: positive, Total: len(links), Links: links}
}

func link(id string, h adapt.Health, present bool) engine.LinkDecision {
	return engine.LinkDecision{
		LinkID:   id,
		Decision: core.Decision{Present: present, Score: 1, Threshold: 1},
		Weight:   1,
		Health:   h,
	}
}

func healthy() adapt.Health { return adapt.Health{State: adapt.StateHealthy} }

func jumped(z float64) adapt.Health {
	return adapt.Health{State: adapt.StateHealthy, ScoreZ: z, JumpExceeded: true}
}

func quarantined(z float64) adapt.Health {
	return adapt.Health{State: adapt.StateQuarantined, DriftZ: z, ScoreZ: z, NeedsRecalibration: true}
}

func TestCoordinatorQuiet(t *testing.T) {
	rec := newRecorder()
	c := New(Config{}, rec)
	rep := c.Observe(verdict(link("a", healthy(), false), link("b", healthy(), false)))
	if rep.State != StateQuiet {
		t.Fatalf("state = %v", rep.State)
	}
	if len(rec.recals) != 0 || len(rec.relocked) != 0 {
		t.Fatalf("quiet tick acted: %+v", rec)
	}
}

// TestCoordinatorLocalized: a single perturbed link is a person — suppress
// its refreshes, never recalibrate, and lift the suppression once it calms.
func TestCoordinatorLocalized(t *testing.T) {
	rec := newRecorder()
	c := New(Config{}, rec)
	rep := c.Observe(verdict(
		link("a", jumped(20), true),
		link("b", healthy(), false),
		link("c", healthy(), false),
	))
	if rep.State != StateLocalized {
		t.Fatalf("state = %v", rep.State)
	}
	if !rec.suppressed["a"] {
		t.Fatal("perturbed link not suppressed")
	}
	if len(rec.relocked) != 0 || len(rec.recals) != 0 {
		t.Fatalf("localized tick relocked/recalibrated: %+v", rec)
	}
	// The person leaves; the link calms; suppression lifts.
	rep = c.Observe(verdict(
		link("a", healthy(), false),
		link("b", healthy(), false),
		link("c", healthy(), false),
	))
	if rep.State != StateQuiet || rec.suppressed["a"] {
		t.Fatalf("suppression not lifted: state %v, %+v", rep.State, rec.suppressed)
	}
}

// TestCoordinatorAmbient: a same-direction majority is environmental —
// relock every evidencing link, clear quarantines, and schedule staggered
// recalibrations during quiet ticks.
func TestCoordinatorAmbient(t *testing.T) {
	rec := newRecorder()
	c := New(Config{CooldownTicks: 1}, rec)
	rep := c.Observe(verdict(
		link("a", jumped(15), true),
		link("b", jumped(12), true),
		link("c", quarantined(18), true),
		link("d", healthy(), false),
		link("e", healthy(), false),
	))
	if rep.State != StateAmbient {
		t.Fatalf("state = %v", rep.State)
	}
	for _, id := range []string{"a", "b", "c"} {
		if rec.relocked[id] == 0 {
			t.Fatalf("link %s not relocked (relocked: %+v)", id, rec.relocked)
		}
	}
	if rec.relocked["d"] != 0 || rec.relocked["e"] != 0 {
		t.Fatalf("quiet links relocked: %+v", rec.relocked)
	}
	if rep.QuarantinesCleared != 1 {
		t.Fatalf("quarantines cleared = %d, want 1", rep.QuarantinesCleared)
	}
	// Quiet ticks afterwards: the queue drains one link per cooldown.
	all := verdict(
		link("a", healthy(), false),
		link("b", healthy(), false),
		link("c", healthy(), false),
		link("d", healthy(), false),
		link("e", healthy(), false),
	)
	for i := 0; i < 12; i++ {
		c.Observe(all)
	}
	if len(rec.recals) != 3 {
		t.Fatalf("recals dispatched = %v, want the 3 relocked links", rec.recals)
	}
}

// TestCoordinatorAmbientHoldCatchesLaggards: a link whose statistics lag the
// quorum is attributed to the same event while the episode is open — even if
// its only evidence is that it is suddenly alarming.
func TestCoordinatorAmbientHoldCatchesLaggards(t *testing.T) {
	rec := newRecorder()
	c := New(Config{AmbientHoldTicks: 5}, rec)
	c.Observe(verdict(
		link("a", jumped(15), true),
		link("b", jumped(12), true),
		link("c", jumped(11), true),
		link("d", healthy(), false),
	))
	// Two ticks later, d finally shows drift evidence: still the same event.
	c.Observe(verdict(
		link("a", healthy(), false),
		link("b", healthy(), false),
		link("c", healthy(), false),
		link("d", adapt.Health{State: adapt.StateDrifting, DriftZ: 5}, true),
	))
	if rec.relocked["d"] == 0 {
		t.Fatalf("laggard not relocked during the episode hold: %+v", rec.relocked)
	}
	// After the hold expires, a lone perturbed link is a person again.
	quiet := verdict(
		link("a", healthy(), false), link("b", healthy(), false),
		link("c", healthy(), false), link("d", healthy(), false),
	)
	for i := 0; i < 6; i++ {
		c.Observe(quiet)
	}
	relocksBefore := rec.relocked["a"]
	rep := c.Observe(verdict(
		link("a", jumped(20), true),
		link("b", healthy(), false),
		link("c", healthy(), false),
		link("d", healthy(), false),
	))
	if rep.State != StateLocalized {
		t.Fatalf("post-hold single perturbation classified %v, want localized", rep.State)
	}
	if rec.relocked["a"] != relocksBefore {
		t.Fatal("person's link relocked outside an ambient episode")
	}
}

// TestCoordinatorStepChange: a quarantined minority recalibrates only after
// the healthy fleet has been silent long enough, and a fresh jump anywhere
// resets that silence (someone just arrived).
func TestCoordinatorStepChange(t *testing.T) {
	rec := newRecorder()
	c := New(Config{SilentTicks: 4, CooldownTicks: 1}, rec)
	quarantinedSite := verdict(
		// Old latch: the arrival jump has aged out of the drift window.
		link("a", adapt.Health{State: adapt.StateQuarantined, DriftZ: 12, ScoreZ: 12, NeedsRecalibration: true}, true),
		link("b", healthy(), false),
		link("c", healthy(), false),
	)
	var rep Report
	for i := 0; i < 3; i++ {
		rep = c.Observe(quarantinedSite)
		if len(rec.recals) != 0 {
			t.Fatalf("recal dispatched before the silent period elapsed (tick %d)", i)
		}
	}
	for i := 0; i < 4; i++ {
		rep = c.Observe(quarantinedSite)
	}
	if rep.State != StateStepChange {
		t.Fatalf("state = %v, want step-change", rep.State)
	}
	// The fake actuator never clears the quarantine, so the coordinator may
	// legitimately re-dispatch (against a real engine the second request is
	// absorbed as ErrRecalPending); what matters is that only the
	// quarantined link is ever dispatched.
	if len(rec.recals) == 0 {
		t.Fatal("no recalibration dispatched after the silent period")
	}
	for _, id := range rec.recals {
		if id != "a" {
			t.Fatalf("recals = %v, want only link a", rec.recals)
		}
	}

	// Same shape, but the quarantined link still carries a fresh jump (a
	// person just arrived and parked): silence must never accumulate.
	rec2 := newRecorder()
	c2 := New(Config{SilentTicks: 4, CooldownTicks: 1}, rec2)
	parked := verdict(
		link("a", adapt.Health{State: adapt.StateQuarantined, DriftZ: 12, ScoreZ: 12, JumpExceeded: true, NeedsRecalibration: true}, true),
		link("b", healthy(), false),
		link("c", healthy(), false),
	)
	for i := 0; i < 20; i++ {
		c2.Observe(parked)
	}
	if len(rec2.recals) != 0 {
		t.Fatalf("parked person's link recalibrated out from under them: %v", rec2.recals)
	}
}

// TestCoordinatorDispatchWaitsForAlarms: queued recalibrations must not
// dispatch while a trustworthy (non-evidencing) link reads occupied — a
// recalibration capture must be an empty room.
func TestCoordinatorDispatchWaitsForAlarms(t *testing.T) {
	rec := newRecorder()
	// CooldownTicks 2 keeps the enqueueing tick itself from dispatching.
	c := New(Config{CooldownTicks: 2}, rec)
	// Ambient event enqueues three links.
	c.Observe(verdict(
		link("a", jumped(15), true),
		link("b", jumped(12), true),
		link("c", jumped(11), true),
	))
	// A healthy link alarms every tick (people in the room): nothing may
	// dispatch, however long it lasts.
	busy := verdict(
		link("a", healthy(), true),
		link("b", healthy(), false),
		link("c", healthy(), false),
	)
	for i := 0; i < 20; i++ {
		c.Observe(busy)
	}
	if len(rec.recals) != 0 {
		t.Fatalf("recals dispatched into an occupied site: %v", rec.recals)
	}
	// The site empties: the queue drains, one link per cooldown.
	quiet := verdict(link("a", healthy(), false), link("b", healthy(), false), link("c", healthy(), false))
	for i := 0; i < 12; i++ {
		c.Observe(quiet)
	}
	if len(rec.recals) != 3 {
		t.Fatalf("queue did not drain once the site emptied: %v", rec.recals)
	}
}

// TestCoordinatorDispatchBlockedByFreshJump: a person arriving on an
// ambient-queued link (fresh jump, which as evidence does not count as a
// "healthy alarm") must still block the queue — recalibrating that link now
// would bake the person into its baseline.
func TestCoordinatorDispatchBlockedByFreshJump(t *testing.T) {
	rec := newRecorder()
	c := New(Config{CooldownTicks: 1, SilentTicks: 2, AmbientHoldTicks: 1}, rec)
	// Ambient event enqueues all three links.
	c.Observe(verdict(
		link("a", jumped(15), true),
		link("b", jumped(12), true),
		link("c", jumped(11), true),
	))
	// A person parks on queued link a before the queue drains: its fresh
	// jump persists for the visit. Nothing may dispatch.
	occupied := verdict(
		link("a", jumped(20), true),
		link("b", healthy(), false),
		link("c", healthy(), false),
	)
	for i := 0; i < 20; i++ {
		c.Observe(occupied)
	}
	if len(rec.recals) != 0 {
		t.Fatalf("recals dispatched while a fresh jump was live: %v", rec.recals)
	}
	// The person leaves and the site stays silent: the queue drains.
	quiet := verdict(link("a", healthy(), false), link("b", healthy(), false), link("c", healthy(), false))
	for i := 0; i < 12; i++ {
		c.Observe(quiet)
	}
	if len(rec.recals) != 3 {
		t.Fatalf("queue did not drain after the visit: %v", rec.recals)
	}
}
