package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mlink/internal/adapt"
	"mlink/internal/engine"
)

// State classifies what the site's cross-link drift evidence says is
// happening — the paper's few-vs-many spatial argument turned into a fleet
// state machine. A person cuts the Fresnel zones of the few links they stand
// near; an environmental change (temperature, receiver gain re-lock) moves
// many links at once and in the same direction.
type State int

const (
	// StateQuiet: no link reports drift evidence; nothing to do.
	StateQuiet State = iota + 1
	// StateLocalized: a minority of links is perturbed — consistent with a
	// person (or another local change). Profile refreshes are suppressed on
	// those links so the perturber is not absorbed into the baseline, and no
	// recalibration is scheduled.
	StateLocalized
	// StateAmbient: a majority of links drifts in the same direction at
	// once — an environmental/receiver-chain event, not a person (one body
	// cannot cut most of a site's Fresnel zones simultaneously). Quarantines
	// are auto-cleared, baselines relocked, and a staggered fleet
	// recalibration is scheduled for verdict-silent periods.
	StateAmbient
	// StateStepChange: a minority of links is latched critical while the
	// site has been verdict-silent — a furniture-move-style permanent local
	// change. Just those links are recalibrated.
	StateStepChange
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQuiet:
		return "quiet"
	case StateLocalized:
		return "localized"
	case StateAmbient:
		return "ambient-drift"
	case StateStepChange:
		return "step-change"
	default:
		return fmt.Sprintf("fleetstate(%d)", int(s))
	}
}

// Actuator is the engine surface the coordinator drives. *engine.Engine
// implements it; tests substitute a recorder.
type Actuator interface {
	// SuppressRefresh holds off (or resumes) one link's profile refreshes.
	SuppressRefresh(linkID string, on bool) error
	// RelockLink clears one link's quarantine and adopts its next window as
	// the new baseline.
	RelockLink(linkID string) error
	// RequestRecalibration posts a non-blocking online recalibration.
	RequestRecalibration(linkID string, packets int) error
	// RecalibrationPending reports whether a posted recalibration has not
	// completed yet — the staggering signal the dispatch queue waits on.
	RecalibrationPending(linkID string) bool
}

var _ Actuator = (*engine.Engine)(nil)

// Config parameterizes the coordinator. The zero value selects the defaults
// noted per field.
type Config struct {
	// AmbientFraction is the fraction of evidencing links that must drift in
	// the same direction before the event is classified as ambient
	// (default 0.6, of the links currently fused).
	AmbientFraction float64
	// MinAmbientLinks floors the same-direction count for ambient
	// classification, so a one- or two-link site cannot "correlate" with
	// itself into clearing a genuine quarantine (default 2).
	MinAmbientLinks int
	// SilentTicks is how many consecutive healthy-links-quiet observations
	// (fused rounds — see Coordinator.Observe) are required before a
	// step-change recalibration may be dispatched — the RASID-style
	// "fleet-silent period" gate (default 8). Note the trade-off: a person
	// parked on one link past both the drift window and this horizon is
	// indistinguishable from moved furniture and will eventually trigger
	// that link's recalibration; the system recovers when they leave (the
	// departure is itself a step the drift monitor catches).
	SilentTicks int
	// CooldownTicks spaces staggered recalibration dispatches (default 2
	// observations between dispatches, in addition to waiting for the
	// previous link's rebuild to finish).
	CooldownTicks int
	// RecalPackets is the packet budget per scheduled recalibration
	// (default 300 — twice the paper's calibration length: a scheduled
	// rebuild replaces a threshold refined online from dozens of rolling
	// nulls, so it gets a bigger holdout than the bootstrap calibration or
	// its q95 threshold estimate is too noisy to hold the false-alarm
	// budget).
	RecalPackets int
	// JumpScoreZ is the |ScoreZ| a jump-flagged link must reach to count as
	// fresh step evidence (default 6, matching the drift monitor's JumpZ).
	JumpScoreZ float64
	// WalkRateDB is the |ShiftRateDB| past which a link counts as actively
	// walking — its adaptation is absorbing a moving baseline even though
	// its scores look quiet (default 0.02 dB/window ≈ 2.4 dB/min at the
	// paper's cadence). Walking links are surfaced in the Report (a
	// whole-fleet walk is the early, silent face of ambient drift) and
	// their trend sign seeds the drift direction when the z evidence is
	// still flat.
	WalkRateDB float64
	// AmbientHoldTicks keeps an ambient episode open after its quorum tick
	// (default 12 observations). Sensitivity to a correlated event varies
	// across links — an insensitive link's drift statistic can lag the
	// quorum by many windows — so while the episode is open, any link that
	// turns evidencing, or that is simply alarming, is attributed to the
	// same site-wide event and relocked too. The cost is a narrow window
	// in which a person arriving right after an ambient event could be
	// absorbed; the alternative is one lagging link alarming for the rest
	// of the run.
	AmbientHoldTicks int
	// DisableRelock turns off the immediate baseline relock on ambient
	// classification, leaving recovery entirely to the scheduled
	// recalibrations (mostly for experiments; relock is what keeps the
	// false-alarm window to a couple of ticks).
	DisableRelock bool
}

func (c Config) withDefaults() Config {
	if c.AmbientFraction <= 0 || c.AmbientFraction > 1 {
		c.AmbientFraction = 0.6
	}
	if c.MinAmbientLinks <= 0 {
		c.MinAmbientLinks = 2
	}
	if c.SilentTicks <= 0 {
		c.SilentTicks = 8
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 2
	}
	if c.RecalPackets <= 0 {
		c.RecalPackets = 300
	}
	if c.JumpScoreZ <= 0 {
		c.JumpScoreZ = 6
	}
	if c.AmbientHoldTicks <= 0 {
		c.AmbientHoldTicks = 12
	}
	if c.WalkRateDB <= 0 {
		c.WalkRateDB = 0.02
	}
	return c
}

// Report is one observation's worth of coordinator output: the fleet
// classification plus the evidence counts and actions behind it.
type Report struct {
	// State is the current fleet classification.
	State State
	// Ticks counts observations so far.
	Ticks uint64
	// Links is how many links were fused this observation (recalibrating
	// links are absent from the verdict and therefore not counted).
	Links int
	// Drifting, Jumped and Quarantined count links by evidence class this
	// observation (a link can be in several); Walking counts links whose
	// profile-shift trend shows adaptation actively absorbing a moving
	// baseline (|ShiftRateDB| past the configured walk rate).
	Drifting, Jumped, Quarantined, Walking int
	// SilentStreak is the current run of verdict-empty observations.
	SilentStreak int
	// Suppressed is how many links currently have refreshes suppressed.
	Suppressed int
	// PendingRecals is the current staggered-recalibration queue depth
	// (including one in flight, if any).
	PendingRecals int
	// RecalsDispatched, Relocks and QuarantinesCleared count actions taken
	// over the coordinator's lifetime.
	RecalsDispatched, Relocks, QuarantinesCleared uint64
	// ActuatorErrors counts failed actuator calls (an engine that stopped
	// running mid-dispatch, for instance).
	ActuatorErrors uint64
}

// Coordinator fuses per-link adaptation health and drift evidence into a
// fleet classification each fusion tick and drives the engine's per-link
// controls accordingly. Observe is single-caller (one fusion loop); Report
// may be read from any goroutine.
type Coordinator struct {
	cfg Config
	act Actuator

	mu         sync.Mutex
	suppressed map[string]bool
	queued     map[string]bool
	queue      []string
	relockedAt map[string]uint64 // tick of the last relock request, for dedup
	ambientEnd uint64            // last tick of the open ambient episode
	inFlight   string
	cooldown   int
	silent     int
	ticks      uint64
	report     Report
	evidBuf    []linkEvidence // reused across Observes
}

// New builds a coordinator driving the given actuator (normally the
// *engine.Engine whose verdicts it observes).
func New(cfg Config, act Actuator) *Coordinator {
	return &Coordinator{
		cfg:        cfg.withDefaults(),
		act:        act,
		suppressed: make(map[string]bool),
		queued:     make(map[string]bool),
		relockedAt: make(map[string]uint64),
	}
}

// Report returns the latest classification and counters. Safe from any
// goroutine.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report
}

// Observe folds one fused site verdict into the fleet state machine and
// applies the resulting actions (suppression, relock, staggered
// recalibration dispatch). Call it once per fused round — after one
// VerdictInto per full pass over the fleet's links — so the tick-based
// windows in Config (SilentTicks, AmbientHoldTicks, CooldownTicks) mean
// what their defaults assume. The facade's fleet mode and mlink-serve drive
// it at exactly that cadence.
func (c *Coordinator) Observe(v *engine.SiteVerdict) Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++

	// Gather per-link evidence. Direction is the sign of the rolling drift
	// z when it is informative, else of the fast per-score z — so a step
	// registers its direction on the very tick it lands.
	var drifting, jumped, quarantined, walking, nonQuarEvid int
	var posDir, negDir int
	healthyAlarm := false
	evidencing := evidencing(&c.evidBuf, v.Links, c.cfg.JumpScoreZ, c.cfg.WalkRateDB)
	for _, ev := range evidencing {
		if ev.drifting {
			drifting++
		}
		if ev.jumped {
			jumped++
		}
		if ev.quarantined {
			quarantined++
		}
		if ev.walking {
			walking++
		}
		if ev.evidencing() {
			if !ev.quarantined {
				nonQuarEvid++
			}
			if ev.dir >= 0 {
				posDir++
			} else {
				negDir++
			}
		} else if ev.present {
			healthyAlarm = true
		}
	}
	// The silence streak is judged on trustworthy links only: a quarantined
	// or drifting link that alarms against its own written-off baseline
	// must not be able to postpone the very recalibration that would fix
	// it. A fresh jump anywhere does count as activity, though — someone
	// just arrived — so a newly perturbed link cannot be recalibrated out
	// from under its visitor; once the jump ages out of the drift window
	// with the shift still latched, it reads as moved furniture instead.
	if healthyAlarm || jumped > 0 {
		c.silent = 0
	} else {
		c.silent++
	}

	n := len(v.Links)
	sameDir := posDir
	if negDir > sameDir {
		sameDir = negDir
	}
	ambientQuorum := int(math.Ceil(c.cfg.AmbientFraction * float64(n)))
	if ambientQuorum < c.cfg.MinAmbientLinks {
		ambientQuorum = c.cfg.MinAmbientLinks
	}

	state := StateQuiet
	switch {
	case n > 0 && sameDir >= ambientQuorum:
		state = StateAmbient
		c.ambientEnd = c.ticks + uint64(c.cfg.AmbientHoldTicks)
		c.onAmbient(evidencing)
	case c.ticks <= c.ambientEnd && drifting+jumped+quarantined > 0:
		// Inside an open ambient episode: links whose statistics lagged
		// the quorum (sensitivity to the shared event varies per link)
		// are attributed to the same cause as they surface.
		state = StateAmbient
		c.onAmbient(evidencing)
	case quarantined > 0 && nonQuarEvid == 0 && c.silent >= c.cfg.SilentTicks:
		// Only quarantine-class links evidence, and the site has been
		// silent long enough that nobody is around: a permanent local
		// change (furniture). Recalibrate just those links.
		state = StateStepChange
		for _, ev := range evidencing {
			if ev.quarantined {
				c.enqueue(ev.id)
			}
		}
		c.unsuppressHealthy(evidencing)
	case drifting+jumped > 0:
		// A minority is perturbed while the fleet holds steady: the
		// few-links signature of a person. Hold their baselines still.
		state = StateLocalized
		for _, ev := range evidencing {
			c.setSuppressed(ev.id, ev.evidencing())
		}
	default:
		c.unsuppressAll()
	}

	// Dispatch is gated on the fleet-silence evidence: no trustworthy
	// alarm, no live jump anywhere (someone may have just arrived —
	// including on a link the ambient queue still holds; without the jump
	// gate a person standing on a queued link would be recalibrated into
	// its baseline the moment the rest of the site quieted down), and a
	// short quiet streak. The streak floor is deliberately small — it
	// asserts "the room is probably empty", not the step-change gate's
	// stronger "this local shift is permanent", and every extra round of
	// delay is a round the queued link keeps scoring on its interim
	// relocked baseline.
	c.dispatch(healthyAlarm || jumped > 0 || c.silent < dispatchSilentFloor)

	c.report = Report{
		State:              state,
		Ticks:              c.ticks,
		Links:              n,
		Drifting:           drifting,
		Jumped:             jumped,
		Quarantined:        quarantined,
		Walking:            walking,
		SilentStreak:       c.silent,
		Suppressed:         len(c.suppressed),
		PendingRecals:      len(c.queue) + inFlightCount(c.inFlight),
		RecalsDispatched:   c.report.RecalsDispatched,
		Relocks:            c.report.Relocks,
		QuarantinesCleared: c.report.QuarantinesCleared,
		ActuatorErrors:     c.report.ActuatorErrors,
	}
	return c.report
}

// dispatchSilentFloor is the minimum healthy-quiet streak before a queued
// recalibration may dispatch (see the gate in Observe).
const dispatchSilentFloor = 2

func inFlightCount(id string) int {
	if id == "" {
		return 0
	}
	return 1
}

// linkEvidence is one link's digested drift evidence.
type linkEvidence struct {
	id          string
	dir         int // +1 / -1 drift direction
	drifting    bool
	jumped      bool
	quarantined bool
	walking     bool // profile-shift trend shows an actively absorbed walk
	present     bool // the link's latest decision reads occupied
}

func (ev linkEvidence) evidencing() bool { return ev.drifting || ev.jumped || ev.quarantined }

// evidencing digests the fused per-link health snapshots into the evidence
// the classifier works on, reusing buf so the quiet steady state does not
// allocate per tick.
func evidencing(buf *[]linkEvidence, links []engine.LinkDecision, jumpScoreZ, walkRateDB float64) []linkEvidence {
	out := (*buf)[:0]
	for _, d := range links {
		h := d.Health
		if h.Lifecycle == adapt.LifecycleStale || h.Lifecycle == adapt.LifecycleDown ||
			h.Lifecycle == adapt.LifecycleRecovering {
			// A link whose source is stale or down carries no fresh channel
			// evidence: its last snapshot describes the room as of whenever
			// the frames stopped, and counting it toward cross-link drift
			// consensus (or ambient quorum) would let a dead collector
			// manufacture site-wide conclusions. Keep a neutral entry so
			// fleet-size fractions (AmbientFraction) still see the link.
			out = append(out, linkEvidence{id: d.LinkID, dir: 1})
			continue
		}
		ev := linkEvidence{
			id:          d.LinkID,
			dir:         1,
			drifting:    h.State == adapt.StateDrifting || h.State == adapt.StateQuarantined,
			jumped:      h.JumpExceeded && math.Abs(h.ScoreZ) >= jumpScoreZ,
			quarantined: h.State == adapt.StateQuarantined || h.NeedsRecalibration,
			walking:     math.Abs(h.ShiftRateDB) >= walkRateDB,
			present:     d.Present,
		}
		// Direction: the larger standardized deviation wins; a link whose
		// adaptation is silently absorbing a walk (scores flat, trend
		// non-zero) falls back to the trend's sign.
		z := h.DriftZ
		if math.Abs(h.ScoreZ) > math.Abs(z) {
			z = h.ScoreZ
		}
		if z == 0 && ev.walking {
			z = h.ShiftRateDB
		}
		if z < 0 {
			ev.dir = -1
		}
		out = append(out, ev)
	}
	*buf = out
	return out
}

// onAmbient applies the ambient-drift recovery: clear and relock every link
// carrying evidence (the shift is environmental — the level each link sits
// at now is its empty room), lift any person-suppressions (there is no
// person), and schedule a staggered full-quality recalibration for the
// relocked links.
func (c *Coordinator) onAmbient(evs []linkEvidence) {
	// An ambient episode spans several observations as each link's stepped
	// window lands; relockHold keeps the per-link request idempotent across
	// the episode (the adapter consumes the request at the link's next
	// scored window, i.e. within one fused round = one observation).
	const relockHold = 2
	for _, ev := range evs {
		// Inside the episode an alarming link counts even without drift
		// evidence: under a site-wide event, "suddenly occupied" on yet
		// another link is the event landing there, not another person.
		if !ev.evidencing() && !ev.present {
			continue
		}
		if !c.cfg.DisableRelock {
			if last, ok := c.relockedAt[ev.id]; !ok || c.ticks-last > relockHold {
				if err := c.act.RelockLink(ev.id); err != nil {
					c.report.ActuatorErrors++
				} else {
					c.relockedAt[ev.id] = c.ticks
					c.report.Relocks++
					if ev.quarantined {
						c.report.QuarantinesCleared++
					}
				}
			}
		}
		c.enqueue(ev.id)
	}
	c.unsuppressAll()
}

// setSuppressed reconciles one link's suppression flag with the desired
// state, calling the actuator only on transitions.
func (c *Coordinator) setSuppressed(id string, want bool) {
	if c.suppressed[id] == want {
		return
	}
	if err := c.act.SuppressRefresh(id, want); err != nil {
		c.report.ActuatorErrors++
		return
	}
	if want {
		c.suppressed[id] = true
	} else {
		delete(c.suppressed, id)
	}
}

// unsuppressAll lifts every suppression the coordinator has applied.
func (c *Coordinator) unsuppressAll() {
	for id := range c.suppressed {
		c.setSuppressed(id, false)
	}
}

// unsuppressHealthy lifts suppressions on links that stopped evidencing.
func (c *Coordinator) unsuppressHealthy(evs []linkEvidence) {
	for _, ev := range evs {
		if !ev.evidencing() {
			c.setSuppressed(ev.id, false)
		}
	}
}

// enqueue adds a link to the staggered-recalibration queue (once).
func (c *Coordinator) enqueue(id string) {
	if c.queued[id] || c.inFlight == id {
		return
	}
	c.queued[id] = true
	c.queue = append(c.queue, id)
}

// dispatch advances the staggered recalibration schedule: at most one link
// recalibrates at a time, dispatches are spaced by the cooldown, and nothing
// is dispatched while the site might be occupied (blocked is the caller's
// fleet-silence verdict: a trustworthy alarm, a live jump, or a silent
// streak still shorter than the step-change gate — a recalibration capture
// must be an empty room).
func (c *Coordinator) dispatch(blocked bool) {
	if c.inFlight != "" {
		// The engine reports the rebuild's lifetime directly (posted or
		// executing); inferring it from verdict membership would race the
		// owning shard's pickup and dispatch a second link concurrently.
		if c.act.RecalibrationPending(c.inFlight) {
			return
		}
		c.inFlight = ""
		c.cooldown = 0
	}
	c.cooldown++
	if len(c.queue) == 0 || blocked || c.cooldown < c.cfg.CooldownTicks {
		return
	}
	id := c.queue[0]
	c.queue = c.queue[1:]
	delete(c.queued, id)
	err := c.act.RequestRecalibration(id, c.cfg.RecalPackets)
	switch {
	case err == nil:
		c.inFlight = id
		c.report.RecalsDispatched++
	case errors.Is(err, engine.ErrRecalPending):
		// Already rebuilding (an operator beat us to it): treat as in
		// flight.
		c.inFlight = id
	default:
		c.report.ActuatorErrors++
	}
	c.cooldown = 0
}
