// Package fleet is the cross-link coordination layer above the engine: it
// turns the paper's spatial argument — a person perturbs the few links whose
// Fresnel zones they cut, while environmental change moves many links at
// once — into a running state machine over the whole site.
//
// Each fusion tick the Coordinator digests every link's adaptation health
// and structured drift evidence (signed drift z, fast per-score z, the
// step-vs-walk jump discriminator) and classifies the fleet:
//
//	quiet        nothing drifting                → no action
//	localized    few links perturbed             → suppress refresh on them
//	                                               (don't absorb the person)
//	ambient      majority drifting, same sign    → clear quarantines, relock
//	                                               baselines, schedule a
//	                                               staggered recalibration
//	step-change  quarantined minority, site      → recalibrate just those
//	             verdict-silent long enough        links
//
// The actions run through the engine's lock-free per-link controls
// (SuppressRefresh, RelockLink, RequestRecalibration), so coordination never
// blocks the scoring shards; scheduled recalibrations execute online, one
// link at a time, on each link's owning shard while its siblings keep
// scoring.
//
// Store adds durability: it snapshots every link's adapted state (profile
// fingerprints, threshold, rolling drift windows) through the engine's
// versioned binary records, so a restarted daemon resumes from the walked
// baseline instead of recalibrating a live site from scratch.
//
// RASID (Kosba et al.) motivates the silent-period re-estimation schedule;
// Kaltiokallio et al.'s multi-scale spatial model motivates the
// few-versus-many disambiguation.
package fleet
