// Package fleet is the cross-link coordination layer above the engine: it
// turns the paper's spatial argument — a person perturbs the few links whose
// Fresnel zones they cut, while environmental change moves many links at
// once — into a running state machine over the whole site.
//
// Each fusion tick the Coordinator digests every link's adaptation health
// and structured drift evidence (signed drift z, fast per-score z, the
// step-vs-walk jump discriminator) and classifies the fleet:
//
//	quiet        nothing drifting                → no action
//	localized    few links perturbed             → suppress refresh on them
//	                                               (don't absorb the person)
//	ambient      majority drifting, same sign    → clear quarantines, relock
//	                                               baselines, schedule a
//	                                               staggered recalibration
//	step-change  quarantined minority, site      → recalibrate just those
//	             verdict-silent long enough        links
//
// The actions run through the engine's lock-free per-link controls
// (SuppressRefresh, RelockLink, RequestRecalibration), so coordination never
// blocks the scoring shards; scheduled recalibrations execute online, one
// link at a time, on each link's owning shard while its siblings keep
// scoring.
//
// Store adds durability: it snapshots every link's adapted state (profile
// fingerprints, threshold, rolling drift windows) through the engine's
// versioned binary records, so a restarted daemon resumes from the walked
// baseline instead of recalibrating a live site from scratch.
//
// Journal makes that durability crash-safe and online. Store only captures
// a stopped engine, so a daemon killed mid-Run would lose every refresh
// since its last checkpoint; the Journal instead rides the scoring loop —
// each owning shard frames per-window state deltas into a lock-free
// per-shard buffer, a background syncer drains, appends and fsyncs them on
// a configured cadence, and compaction folds the growing journal back into
// Store snapshots. Records are length-framed and CRC'd (internal/binio), so
// OpenJournal detects and truncates the torn tail a kill leaves behind and
// Restore rebuilds each link bit-for-bit from latest snapshot + latest full
// record + latest delta, bounding a crash's loss to roughly the fsync
// cadence. The crash-injection harness in journal_test.go holds this to the
// letter: kills at every record boundary, at byte granularity, and through
// an injected filesystem that dies mid-write must all recover to a clean
// prefix of the emitted record stream.
//
// RASID (Kosba et al.) motivates the silent-period re-estimation schedule;
// Kaltiokallio et al.'s multi-scale spatial model motivates the
// few-versus-many disambiguation.
package fleet
