package fleet

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"

	"mlink/internal/engine"
)

// Store persists per-link engine records under one directory — the piece
// that makes adaptation durable: a daemon that dies and restarts Loads the
// walked baselines back instead of recalibrating a live site from scratch.
// One file per link, named by the URL-escaped link ID, so records survive
// fleet membership changes independently of one another.
type Store struct {
	// Dir is the snapshot directory (created on first Save).
	Dir string
}

// ErrRunning reports a persistence operation attempted while the engine is
// running (or mid-calibration): snapshots must be quiescent, so stop the
// engine — or journal online with OpenJournal — instead. Wraps
// engine.ErrRunning, so callers may test against either sentinel.
var ErrRunning = fmt.Errorf("fleet: persistence needs a stopped engine (%w)", engine.ErrRunning)

// recordExt is the link-record file extension.
const recordExt = ".mlprofile"

// path returns the record file for a link ID.
func (s Store) path(linkID string) string {
	return filepath.Join(s.Dir, url.PathEscape(linkID)+recordExt)
}

// Save snapshots every calibrated link of the engine into the store,
// overwriting previous records, and returns the IDs written. Uncalibrated
// links are skipped (there is nothing to persist yet). Rejected while the
// engine runs — stop (or don't start) monitoring around a checkpoint.
func (s Store) Save(eng *engine.Engine) ([]string, error) {
	if s.Dir == "" {
		return nil, errors.New("fleet: store has no directory")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet store: %w", err)
	}
	var saved []string
	for _, id := range eng.Links() {
		record, err := eng.ExportLink(id)
		if errors.Is(err, engine.ErrNotCalibrated) {
			continue
		}
		if errors.Is(err, engine.ErrRunning) {
			return saved, ErrRunning
		}
		if err != nil {
			return saved, fmt.Errorf("fleet store: %w", err)
		}
		if err := writeFileAtomic(s.path(id), record); err != nil {
			return saved, fmt.Errorf("fleet store %s: %w", id, err)
		}
		saved = append(saved, id)
	}
	return saved, nil
}

// writeFileAtomic writes via a same-directory temp file and rename, so a
// crash mid-save leaves the previous intact record rather than a truncated
// one that would hard-fail the next startup's Load.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load restores every registered link that has a record in the store and
// returns the IDs restored. Links without a record are left untouched —
// calibrate them with Engine.CalibrateMissing afterwards. A record that
// exists but cannot be decoded is an error: silently recalibrating over a
// corrupt snapshot would hide the corruption.
func (s Store) Load(eng *engine.Engine) ([]string, error) {
	if s.Dir == "" {
		return nil, errors.New("fleet: store has no directory")
	}
	var restored []string
	for _, id := range eng.Links() {
		record, err := os.ReadFile(s.path(id))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return restored, fmt.Errorf("fleet store: %w", err)
		}
		if err := eng.ImportLink(id, record); err != nil {
			if errors.Is(err, engine.ErrRunning) {
				return restored, ErrRunning
			}
			return restored, fmt.Errorf("fleet store: %w", err)
		}
		restored = append(restored, id)
	}
	return restored, nil
}
