package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/engine"
	"mlink/internal/scenario"
)

// TestStorePersistenceRoundTrip is the acceptance check for durable
// adaptation: an engine is run with adaptation active (its baselines walk),
// killed, and rebuilt from a Store snapshot; the restored links must score
// the next windows within 1e-9 of the uninterrupted engine and require no
// recalibration.
func TestStorePersistenceRoundTrip(t *testing.T) {
	const (
		nLinks  = 2
		windows = 12
		future  = 8
	)
	preset := scenario.GainWalk(8) // keep the baselines actively walking
	pol := adapt.Policy{RederiveEvery: 4}

	build := func() (*engine.Engine, []*scenario.DriftStream) {
		e := engine.New(engine.Config{Workers: 1, WindowSize: 25, Adaptation: &pol})
		streams := make([]*scenario.DriftStream, 0, nLinks)
		for i := 0; i < nLinks; i++ {
			s, err := scenario.LinkCase(i+2, int64(40+i))
			if err != nil {
				t.Fatal(err)
			}
			stream, err := s.NewDriftStream(preset, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.AddLink(fmt.Sprintf("l%d", i), core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets()), stream); err != nil {
				t.Fatal(err)
			}
			streams = append(streams, stream)
		}
		return e, streams
	}

	a, streams := build()
	if err := a.Calibrate(context.Background(), 150); err != nil {
		t.Fatal(err)
	}
	if err := a.Run(context.Background(), windows); err != nil {
		t.Fatal(err)
	}
	for _, lm := range a.Metrics().PerLink {
		if lm.Health.Refreshes == 0 {
			t.Fatalf("link %s never adapted — the round trip would prove nothing", lm.ID)
		}
	}

	dir := t.TempDir()
	store := Store{Dir: dir}
	saved, err := store.Save(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != nLinks {
		t.Fatalf("saved %v, want %d links", saved, nLinks)
	}

	// Capture the links' future windows once; both engines then score the
	// identical frames.
	futureWindows := make([][][]*csi.Frame, nLinks)
	for i, stream := range streams {
		for w := 0; w < future; w++ {
			win := make([]*csi.Frame, 0, 25)
			for p := 0; p < 25; p++ {
				f, err := stream.Next()
				if err != nil {
					t.Fatal(err)
				}
				win = append(win, f)
			}
			futureWindows[i] = append(futureWindows[i], win)
		}
	}

	// The "restarted daemon": fresh engine, links registered but never
	// calibrated, state loaded from the store.
	b, _ := build()
	restored, err := store.Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != nLinks {
		t.Fatalf("restored %v, want %d links", restored, nLinks)
	}
	for _, lm := range b.Metrics().PerLink {
		if !lm.Calibrated || !lm.Adaptive {
			t.Fatalf("restored link %s not calibrated+adaptive: %+v", lm.ID, lm)
		}
		if lm.Health.NeedsRecalibration {
			t.Fatalf("restored link %s demands recalibration", lm.ID)
		}
	}
	// Nothing missing: CalibrateMissing must be a no-op (no source frames
	// consumed).
	if err := b.CalibrateMissing(context.Background(), 150); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < nLinks; i++ {
		id := fmt.Sprintf("l%d", i)
		for w, win := range futureWindows[i] {
			decA, err := a.ScoreWindow(id, win)
			if err != nil {
				t.Fatal(err)
			}
			decB, err := b.ScoreWindow(id, win)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(decA.Score-decB.Score) > 1e-9 || decA.Present != decB.Present ||
				math.Abs(decA.Threshold-decB.Threshold) > 1e-9 {
				t.Fatalf("link %s window %d diverged:\n uninterrupted %+v\n restored      %+v", id, w, decA, decB)
			}
		}
	}

	// The adaptation state marched in lockstep too.
	ma, mb := a.Metrics(), b.Metrics()
	for i := range ma.PerLink {
		ha, hb := ma.PerLink[i].Health, mb.PerLink[i].Health
		if ha.Refreshes != hb.Refreshes || ha.ThresholdUpdates != hb.ThresholdUpdates || ha.State != hb.State {
			t.Fatalf("link %s adaptation diverged:\n uninterrupted %+v\n restored      %+v", ma.PerLink[i].ID, ha, hb)
		}
	}
}

// TestStoreErrors pins the store's failure modes.
func TestStoreErrors(t *testing.T) {
	if _, err := (Store{}).Save(engine.New(engine.Config{})); err == nil {
		t.Fatal("dirless store saved")
	}
	if _, err := (Store{}).Load(engine.New(engine.Config{})); err == nil {
		t.Fatal("dirless store loaded")
	}

	// A corrupt record is an error, not a silent recalibration.
	dir := t.TempDir()
	e := engine.New(engine.Config{Workers: 1, WindowSize: 25})
	s, err := scenario.LinkCase(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("l", core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets()),
		engine.ExtractorSource(x, nil)); err != nil {
		t.Fatal(err)
	}
	store := Store{Dir: dir}
	// No records yet: Load restores nothing and is not an error.
	restored, err := store.Load(e)
	if err != nil || len(restored) != 0 {
		t.Fatalf("empty-store load = (%v, %v)", restored, err)
	}
	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(e); err != nil {
		t.Fatal(err)
	}
	if err := corruptFirstRecord(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(e); !errors.Is(err, engine.ErrBadRecord) {
		t.Fatalf("corrupt record load err = %v", err)
	}
}

// corruptFirstRecord flips the magic of the link's record file.
func corruptFirstRecord(dir string) error {
	path := Store{Dir: dir}.path("l")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[0] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}
