package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/binio"
	"mlink/internal/engine"
)

// journalFileName is the append-only journal inside a journal directory;
// the directory doubles as the Store holding the compacted snapshots.
const journalFileName = "journal.mlwal"

// Journal record kinds: a full record is a complete ExportLink snapshot (the
// base), a delta is the adapter's absolute mutable state as of one scored
// window (applied onto the latest base). Within one link's record stream,
// latest-full-then-latest-delta-after-it reconstructs the link exactly.
const (
	kindFull  byte = 1
	kindDelta byte = 2
)

// journalFS abstracts the journal's filesystem touchpoints so the crash
// harness can inject failures and kills at any write boundary; osFS is the
// production implementation.
type journalFS interface {
	MkdirAll(dir string) error
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic replaces path via temp-file-and-rename: observers see
	// either the old content or the new, never a prefix.
	WriteFileAtomic(path string, data []byte) error
	OpenAppend(path string) (journalHandle, error)
}

// journalHandle is an open append-mode journal file.
type journalHandle interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type osFS struct{}

func (osFS) MkdirAll(dir string) error                { return os.MkdirAll(dir, 0o755) }
func (osFS) ReadFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func (osFS) WriteFileAtomic(p string, d []byte) error { return writeFileAtomic(p, d) }
func (osFS) OpenAppend(path string) (journalHandle, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// JournalConfig parameterizes a Journal.
type JournalConfig struct {
	// SyncEvery is the fsync cadence (default 1s): the upper bound on how
	// much adaptation history a crash can lose. Shorter bounds loss tighter
	// at the cost of more fsyncs; the emission path itself never blocks on
	// the disk either way.
	SyncEvery time.Duration
	// CompactBytes triggers compaction — full snapshots rewritten into the
	// Store, the journal rewritten with only the latest deltas — once the
	// journal grows past it (default 4 MiB; negative disables compaction
	// entirely, including the final one at Close).
	CompactBytes int64
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = time.Second
	}
	if c.CompactBytes == 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// latestRec is one link's most recent journaled state: the latest full
// record not yet compacted into a snapshot file (empty once it has been),
// and the latest delta after it. Buffers are reused across absorptions, so
// the steady-state syncer allocates nothing.
type latestRec struct {
	full  []byte
	delta []byte
}

// Journal is crash-safe online persistence for a running engine: an
// append-only, CRC-framed record log (see binio's journal framing) that
// the engine emits full link records and per-window deltas into, made
// durable by a background syncer on a configurable cadence and periodically
// compacted into ordinary Store snapshots.
//
// The write path never touches the disk or the journal mutex: the engine's
// single writer (appends serialized by the engine, in global emission
// order) buffers records into a journalWriter whose buffers hand off to
// the syncer through single-producer/single-consumer atomics — no
// allocations, and never a disk stall on the scoring path. Because the
// file preserves emission order, every durable prefix is a cut the fleet
// actually passed through. A crash (or kill) at any byte loses at most the
// records since the last sync; reopening detects the torn tail by CRC,
// truncates it, and resumes the walked baselines bit-for-bit from the
// surviving prefix.
type Journal struct {
	dir   string
	path  string
	cfg   JournalConfig
	fs    journalFS
	store Store

	// broken makes every writer's append a no-op once the journal has
	// failed or closed — shards check it lock-free.
	broken atomic.Bool

	mu      sync.Mutex
	f       journalHandle
	size    int64
	latest  map[string]*latestRec
	writers []*journalWriter
	failed  error
	cbuf    []byte // compaction scratch

	absorbFn  func([]byte) error
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// OpenJournal opens (or creates) the journal in dir, recovering from
// whatever a previous session — cleanly closed or killed mid-write — left
// behind: a torn tail is detected via the record CRCs and truncated, and
// the surviving records seed the in-memory state that Restore replays. A
// journal whose header belongs to a different format or version is refused
// rather than clobbered. The returned Journal is ready to Restore into an
// engine and to be installed with engine.SetJournal.
func OpenJournal(dir string, cfg JournalConfig) (*Journal, error) {
	return openJournal(dir, cfg, osFS{})
}

func openJournal(dir string, cfg JournalConfig, fs journalFS) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("fleet: journal has no directory")
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("fleet journal: %w", err)
	}
	j := &Journal{
		dir:    dir,
		path:   filepath.Join(dir, journalFileName),
		cfg:    cfg.withDefaults(),
		fs:     fs,
		store:  Store{Dir: dir},
		latest: make(map[string]*latestRec),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	j.absorbFn = j.absorb

	data, err := fs.ReadFile(j.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("fleet journal: %w", err)
	}
	if len(data) < binio.JournalHeaderLen {
		// Missing, empty, or torn mid-header: no record was ever durable, so
		// start a fresh journal (atomically, so a crash here is the same case
		// again next time).
		if err := fs.WriteFileAtomic(j.path, binio.AppendJournalHeader(nil)); err != nil {
			return nil, fmt.Errorf("fleet journal: %w", err)
		}
		j.size = binio.JournalHeaderLen
	} else {
		region, err := binio.CheckJournalHeader(data)
		if err != nil {
			// Full header, wrong magic or version: refuse — this build must
			// not destroy a file it cannot interpret.
			return nil, fmt.Errorf("fleet journal %s: %w", j.path, err)
		}
		clean, err := binio.ScanJournal(region, j.absorbFn)
		switch {
		case errors.Is(err, binio.ErrTornRecord):
			// Crash residue after the clean prefix: truncate it atomically so
			// this session's appends land on intact framing.
			if werr := fs.WriteFileAtomic(j.path, data[:binio.JournalHeaderLen+clean]); werr != nil {
				return nil, fmt.Errorf("fleet journal truncate: %w", werr)
			}
		case err != nil:
			// A record that passed its CRC but does not parse is not crash
			// damage — it is a format problem. Refuse rather than guess.
			return nil, fmt.Errorf("fleet journal %s: %w", j.path, err)
		}
		j.size = int64(binio.JournalHeaderLen + clean)
	}
	f, err := fs.OpenAppend(j.path)
	if err != nil {
		return nil, fmt.Errorf("fleet journal: %w", err)
	}
	j.f = f
	go j.syncLoop()
	return j, nil
}

// parseJournalPayload splits one journal record payload into kind, link ID
// and blob. The returned slices alias payload.
func parseJournalPayload(payload []byte) (kind byte, id, blob []byte, err error) {
	r := binio.NewReader(payload)
	kind = r.U8()
	id = r.Bytes()
	blob = r.Bytes()
	if err := r.Done(); err != nil {
		return 0, nil, nil, fmt.Errorf("fleet journal record: %w", err)
	}
	if kind != kindFull && kind != kindDelta {
		return 0, nil, nil, fmt.Errorf("fleet journal record kind %d: %w", kind, binio.ErrBadJournal)
	}
	return kind, id, blob, nil
}

// absorb folds one record into the latest map. A full record supersedes any
// delta before it (deltas are absolute, but relative to their base); a
// delta replaces the previous delta. Reuses per-link buffers, so the
// steady-state syncer does not allocate.
func (j *Journal) absorb(payload []byte) error {
	kind, id, blob, err := parseJournalPayload(payload)
	if err != nil {
		return err
	}
	rec := j.latest[string(id)]
	if rec == nil {
		rec = &latestRec{}
		j.latest[string(id)] = rec
	}
	switch kind {
	case kindFull:
		rec.full = append(rec.full[:0], blob...)
		rec.delta = rec.delta[:0]
	case kindDelta:
		rec.delta = append(rec.delta[:0], blob...)
	}
	return nil
}

// NewWriter hands out an emission endpoint (engine.JournalSink). The
// engine creates one per installed sink and serializes its own appends to
// it; the writer's SPSC handoff assumes that external serialization.
func (j *Journal) NewWriter() engine.JournalWriter {
	w := &journalWriter{j: j, active: &jbuf{}}
	w.spare.Store(&jbuf{})
	j.mu.Lock()
	j.writers = append(j.writers, w)
	j.mu.Unlock()
	return w
}

// Restore replays the journal into a stopped engine: for every registered
// link with journaled state, the latest full record (from the journal, or
// from the compacted snapshot in the same directory) is imported and the
// latest delta after it applied, leaving the link bit-for-bit where the
// last synced window put it. Links with no journaled state are left
// untouched — calibrate them with Engine.CalibrateMissing. Returns the IDs
// restored.
func (j *Journal) Restore(eng *engine.Engine) ([]string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var restored []string
	for _, id := range eng.Links() {
		rec := j.latest[id]
		var full []byte
		if rec != nil && len(rec.full) > 0 {
			full = rec.full
		} else {
			data, err := j.fs.ReadFile(j.store.path(id))
			switch {
			case errors.Is(err, os.ErrNotExist):
				if rec != nil && len(rec.delta) > 0 {
					// A delta with no base anywhere means the base was lost —
					// compaction cannot produce this state, so refuse loudly.
					return restored, fmt.Errorf("fleet journal: link %s has a delta but no base record: %w", id, binio.ErrBadJournal)
				}
				continue
			case err != nil:
				return restored, fmt.Errorf("fleet journal: %w", err)
			}
			full = data
		}
		if err := eng.ImportLink(id, full); err != nil {
			if errors.Is(err, engine.ErrRunning) {
				return restored, ErrRunning
			}
			return restored, fmt.Errorf("fleet journal: %w", err)
		}
		if rec != nil && len(rec.delta) > 0 {
			if err := eng.ApplyLinkDelta(id, rec.delta); err != nil {
				return restored, fmt.Errorf("fleet journal: %w", err)
			}
		}
		restored = append(restored, id)
	}
	return restored, nil
}

// syncLoop is the background syncer: on every cadence tick it drains the
// writers' handed-off buffers to disk and fsyncs, then compacts if the
// journal has outgrown its budget.
func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			j.drainLocked()
			j.mu.Unlock()
		}
	}
}

// drain is the synchronous drain used by writer Flush and Sync.
func (j *Journal) drain() {
	j.mu.Lock()
	j.drainLocked()
	j.mu.Unlock()
}

func (j *Journal) drainLocked() {
	if j.failed != nil {
		return
	}
	wrote := false
	for _, w := range j.writers {
		buf := w.pending.Load()
		if buf == nil {
			continue
		}
		// Absorb before writing: the latest map must cover every record the
		// file may contain, or a compaction could drop state that an
		// incomplete append made durable.
		if _, err := binio.ScanJournal(buf.b, j.absorbFn); err != nil {
			j.fail(err)
			return
		}
		if _, err := j.f.Write(buf.b); err != nil {
			j.fail(fmt.Errorf("fleet journal append: %w", err))
			return
		}
		j.size += int64(len(buf.b))
		wrote = true
		buf.b = buf.b[:0]
		w.pending.Store(nil)
		w.spare.Store(buf)
	}
	if wrote {
		if err := j.f.Sync(); err != nil {
			j.fail(fmt.Errorf("fleet journal sync: %w", err))
			return
		}
	}
	if j.cfg.CompactBytes > 0 && j.size >= j.cfg.CompactBytes {
		j.compactLocked()
	}
}

// compactLocked rewrites the journal's accumulated state as ordinary Store
// snapshots plus a minimal journal holding only the latest deltas. Crash
// safety comes from ordering alone: snapshots are written (each atomically)
// before the journal is atomically replaced, so a kill at any point leaves
// either the old journal (whose records supersede the snapshots they were
// compacted into) or the new one (whose deltas apply onto the snapshots
// just written) — never a state that replays wrong.
func (j *Journal) compactLocked() {
	for id, rec := range j.latest {
		if len(rec.full) == 0 {
			continue
		}
		if err := j.fs.WriteFileAtomic(j.store.path(id), rec.full); err != nil {
			j.fail(fmt.Errorf("fleet journal compact: %w", err))
			return
		}
	}
	b := binio.AppendJournalHeader(j.cbuf[:0])
	for id, rec := range j.latest {
		if len(rec.delta) == 0 {
			continue
		}
		var mark int
		b, mark = binio.BeginJournalRecord(b)
		b = append(b, kindDelta)
		b = binio.AppendString(b, id)
		b = binio.AppendBytes(b, rec.delta)
		b = binio.EndJournalRecord(b, mark)
	}
	j.cbuf = b
	if err := j.fs.WriteFileAtomic(j.path, b); err != nil {
		j.fail(fmt.Errorf("fleet journal compact: %w", err))
		return
	}
	if err := j.f.Close(); err != nil {
		j.fail(fmt.Errorf("fleet journal compact: %w", err))
		return
	}
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		j.fail(fmt.Errorf("fleet journal compact: %w", err))
		return
	}
	j.f = f
	j.size = int64(len(b))
	for _, rec := range j.latest {
		rec.full = rec.full[:0]
	}
}

// fail records the journal's first error and stops all writing — sticky, so
// a failed journal never half-writes its way into an inconsistent file.
func (j *Journal) fail(err error) {
	if j.failed == nil {
		j.failed = err
	}
	j.broken.Store(true)
}

// Sync drains and fsyncs now, off-cadence — a checkpoint barrier. Returns
// the journal's sticky error, if any.
func (j *Journal) Sync() error {
	j.mu.Lock()
	j.drainLocked()
	err := j.failed
	j.mu.Unlock()
	return err
}

// Err reports the journal's sticky failure (nil while healthy). Once set,
// the journal has stopped writing: the on-disk state is the last
// successfully synced prefix, exactly what a crash at that moment would
// have left.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Close stops the syncer, drains what the writers handed off, compacts
// (unless disabled or already failed) so the directory ends as plain Store
// snapshots plus a minimal journal, and closes the file. Idempotent.
// Detach the journal from the engine (SetJournal(nil)) first; appends to a
// closed journal are silently dropped.
func (j *Journal) Close() error {
	j.closeOnce.Do(func() {
		close(j.stop)
		<-j.done
		j.mu.Lock()
		j.drainLocked()
		if j.failed == nil && j.cfg.CompactBytes >= 0 {
			j.compactLocked()
		}
		j.broken.Store(true)
		if j.f != nil {
			if err := j.f.Close(); err != nil && j.failed == nil {
				j.failed = fmt.Errorf("fleet journal close: %w", err)
			}
			j.f = nil
		}
		j.closeErr = j.failed
		j.mu.Unlock()
	})
	return j.closeErr
}

// jbuf is one handoff buffer of framed records.
type jbuf struct{ b []byte }

// journalWriter is the engine's emission endpoint: a two-buffer single-
// producer/single-consumer handoff. The producer (appends are serialized
// by the engine) frames records into the active buffer and, whenever the
// syncer is not holding one, hands it off by a single atomic store; the
// syncer returns consumed buffers through spare. The scoring path
// therefore never takes the journal mutex, never blocks on the disk, and —
// once the two buffers have grown to the workload's high-water mark —
// never allocates.
type journalWriter struct {
	j       *Journal
	active  *jbuf
	pending atomic.Pointer[jbuf] // set by shard, cleared by syncer
	spare   atomic.Pointer[jbuf] // set by syncer, taken by shard
}

func (w *journalWriter) AppendFull(linkID string, record []byte) { w.append(kindFull, linkID, record) }
func (w *journalWriter) AppendDelta(linkID string, record []byte) {
	w.append(kindDelta, linkID, record)
}

func (w *journalWriter) append(kind byte, id string, blob []byte) {
	if w.j.broken.Load() {
		return
	}
	b, mark := binio.BeginJournalRecord(w.active.b)
	b = append(b, kind)
	b = binio.AppendString(b, id)
	b = binio.AppendBytes(b, blob)
	w.active.b = binio.EndJournalRecord(b, mark)
	w.tryHandoff()
}

// tryHandoff publishes the active buffer to the syncer if the previous one
// has been consumed. Records keep accumulating in the active buffer while
// the syncer is behind — nothing is dropped, nothing blocks.
func (w *journalWriter) tryHandoff() {
	if len(w.active.b) == 0 || w.pending.Load() != nil {
		return
	}
	sp := w.spare.Swap(nil)
	if sp == nil {
		return
	}
	w.pending.Store(w.active)
	w.active = sp
}

// Flush synchronously pushes everything this writer has buffered through
// the syncer (engine shards call it on their way out of a Run). A failed
// journal discards instead — the sticky error already marks the loss.
func (w *journalWriter) Flush() {
	for len(w.active.b) > 0 || w.pending.Load() != nil {
		if w.j.broken.Load() {
			w.active.b = w.active.b[:0]
			return
		}
		w.tryHandoff()
		w.j.drain()
	}
}
