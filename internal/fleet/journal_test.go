package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/binio"
	"mlink/internal/core"
	"mlink/internal/engine"
	"mlink/internal/scenario"
)

// ---------------------------------------------------------------------------
// Harness pieces
// ---------------------------------------------------------------------------

// logRec is one recorded journal emission.
type logRec struct {
	kind byte
	id   string
	blob []byte
}

// frameSize is the record's framed byte length in the journal file.
func (r logRec) frameSize() int { return 8 + 1 + 4 + len(r.id) + 4 + len(r.blob) }

// teeSink records every emitted record (in emission order) while forwarding
// to an inner sink — the ground truth the crash properties are checked
// against. With Workers=1 there is a single emitting shard, so the log
// order is exactly the journal file's record order.
type teeSink struct {
	inner engine.JournalSink
	mu    sync.Mutex
	log   []logRec
}

func (s *teeSink) NewWriter() engine.JournalWriter {
	w := &teeWriter{s: s}
	if s.inner != nil {
		w.inner = s.inner.NewWriter()
	}
	return w
}

func (s *teeSink) add(kind byte, id string, blob []byte) {
	s.mu.Lock()
	s.log = append(s.log, logRec{kind: kind, id: id, blob: append([]byte(nil), blob...)})
	s.mu.Unlock()
}

func (s *teeSink) records() []logRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]logRec(nil), s.log...)
}

type teeWriter struct {
	s     *teeSink
	inner engine.JournalWriter
}

func (w *teeWriter) AppendFull(id string, rec []byte) {
	w.s.add(kindFull, id, rec)
	if w.inner != nil {
		w.inner.AppendFull(id, rec)
	}
}

func (w *teeWriter) AppendDelta(id string, rec []byte) {
	w.s.add(kindDelta, id, rec)
	if w.inner != nil {
		w.inner.AppendDelta(id, rec)
	}
}

func (w *teeWriter) Flush() {
	if w.inner != nil {
		w.inner.Flush()
	}
}

// journalFileBytes renders the exact journal file a clean single-shard run
// produces from a record log prefix.
func journalFileBytes(log []logRec) []byte {
	b := binio.AppendJournalHeader(nil)
	for _, r := range log {
		var mark int
		b, mark = binio.BeginJournalRecord(b)
		b = append(b, r.kind)
		b = binio.AppendString(b, r.id)
		b = binio.AppendBytes(b, r.blob)
		b = binio.EndJournalRecord(b, mark)
	}
	return b
}

// driftFixture builds a deterministic adaptive drift fleet: Workers=1 (one
// emitting shard — record order is total), GainWalk so baselines are
// actively walking, RederiveEvery small so thresholds move too.
func driftFixture(t testing.TB, nLinks int) *engine.Engine {
	t.Helper()
	pol := adapt.Policy{RederiveEvery: 4}
	e := engine.New(engine.Config{Workers: 1, WindowSize: 25, Adaptation: &pol})
	for i := 0; i < nLinks; i++ {
		s, err := scenario.LinkCase(i+2, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		stream, err := s.NewDriftStream(scenario.GainWalk(8), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddLink(fmt.Sprintf("l%d", i), core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets()), stream); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// journaledDriftRun runs a journaled drift fleet to completion and returns
// the emission log, the final per-link exports, and the journal directory
// (journal closed, compaction disabled so the file holds every record).
func journaledDriftRun(t *testing.T, nLinks, windows int) ([]logRec, map[string][]byte, string) {
	t.Helper()
	dir := t.TempDir()
	eng := driftFixture(t, nLinks)
	if err := eng.Calibrate(context.Background(), 150); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(dir, JournalConfig{SyncEvery: time.Millisecond, CompactBytes: -1}, osFS{})
	if err != nil {
		t.Fatal(err)
	}
	tee := &teeSink{inner: j}
	if err := eng.SetJournal(tee); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), windows); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	exports := make(map[string][]byte)
	for _, id := range eng.Links() {
		rec, err := eng.ExportLink(id)
		if err != nil {
			t.Fatal(err)
		}
		exports[id] = rec
	}
	return tee.records(), exports, dir
}

// expectedStates reconstructs, per link, the state a clean replay of
// log[:k] must produce: the latest full record with the latest delta after
// it applied, re-exported. recon is a reusable registered-but-uncalibrated
// fixture engine (imports overwrite, so reuse across prefixes is safe).
func expectedStates(t *testing.T, recon *engine.Engine, log []logRec) map[string][]byte {
	t.Helper()
	type pair struct{ full, delta []byte }
	byLink := map[string]*pair{}
	for _, r := range log {
		p := byLink[r.id]
		if p == nil {
			p = &pair{}
			byLink[r.id] = p
		}
		switch r.kind {
		case kindFull:
			p.full = r.blob
			p.delta = nil
		case kindDelta:
			p.delta = r.blob
		}
	}
	out := make(map[string][]byte, len(byLink))
	for id, p := range byLink {
		if p.full == nil {
			if p.delta != nil {
				t.Fatalf("link %s: delta before any full record", id)
			}
			continue
		}
		if err := recon.ImportLink(id, p.full); err != nil {
			t.Fatal(err)
		}
		if p.delta != nil {
			if err := recon.ApplyLinkDelta(id, p.delta); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := recon.ExportLink(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = rec
	}
	return out
}

// ---------------------------------------------------------------------------
// Tentpole property 1: kills at every record boundary
// ---------------------------------------------------------------------------

// TestJournalCrashRecoveryAtRecordBoundaries injects a kill after every
// record of a real journaled drift run and proves recovery is bit-exact:
// reopening a journal truncated to any record boundary restores, for every
// link, state byte-identical to replaying exactly that prefix of the
// emitted record stream — and the complete journal restores state
// byte-identical to the uninterrupted engine's final export.
func TestJournalCrashRecoveryAtRecordBoundaries(t *testing.T) {
	const nLinks, windows = 2, 12
	log, finalExports, dir := journaledDriftRun(t, nLinks, windows)
	if len(log) < nLinks*(windows+1) {
		t.Fatalf("only %d records emitted", len(log))
	}

	// The closed journal file must be exactly the emitted record stream.
	file, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(file, journalFileBytes(log)) {
		t.Fatal("journal file does not equal the framed emission log")
	}

	recon := driftFixture(t, nLinks)    // rebuilds expected states from log prefixes
	restored := driftFixture(t, nLinks) // restore target, reused across prefixes
	crashDir := t.TempDir()
	for k := 0; k <= len(log); k++ {
		if err := os.WriteFile(filepath.Join(crashDir, journalFileName), journalFileBytes(log[:k]), 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := openJournal(crashDir, JournalConfig{CompactBytes: -1}, osFS{})
		if err != nil {
			t.Fatalf("prefix %d: open: %v", k, err)
		}
		ids, err := j.Restore(restored)
		if err != nil {
			t.Fatalf("prefix %d: restore: %v", k, err)
		}
		want := expectedStates(t, recon, log[:k])
		if len(ids) != len(want) {
			t.Fatalf("prefix %d: restored %v, want %d links", k, ids, len(want))
		}
		for _, id := range ids {
			got, err := restored.ExportLink(id)
			if err != nil {
				t.Fatalf("prefix %d: export %s: %v", k, id, err)
			}
			if !bytes.Equal(got, want[id]) {
				t.Fatalf("prefix %d: link %s recovered state differs from clean prefix replay", k, id)
			}
			if k == len(log) && !bytes.Equal(got, finalExports[id]) {
				t.Fatalf("link %s: full-journal recovery differs from the uninterrupted engine", id)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatalf("prefix %d: close: %v", k, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Tentpole property 2: kills at byte boundaries
// ---------------------------------------------------------------------------

// byteSweepCuts picks the kill offsets for a byte-level sweep of a real
// journal file: every byte through the header and the first frame words,
// every record boundary ±{1, 4}, and a prime-stride sample across the rest.
// (binio's TestJournalEveryBytePrefix covers literally every byte of a
// journal exhaustively at the framing layer; this sweeps the same property
// through the full open-recover-append stack, where each kill point costs a
// real reopen and fsync.)
func byteSweepCuts(log []logRec, fileLen int) []int {
	cutset := map[int]struct{}{}
	add := func(c int) {
		if c >= 0 && c <= fileLen {
			cutset[c] = struct{}{}
		}
	}
	for c := 0; c <= binio.JournalHeaderLen+64; c++ {
		add(c)
	}
	off := binio.JournalHeaderLen
	for _, r := range log {
		off += r.frameSize()
		for _, d := range []int{-4, -1, 0, 1, 4} {
			add(off + d)
		}
	}
	for c := 0; c < fileLen; c += 499 {
		add(c)
	}
	cuts := make([]int, 0, len(cutset))
	for c := range cutset {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

// TestJournalByteBoundaryRecovery kills a real journaled drift run at byte
// granularity: for each cut the reopened journal must hold exactly the
// records fully durable before the kill, the torn tail must be truncated
// from the file, and the recovered journal must accept and persist fresh
// appends — never panicking, never corrupting the next session.
func TestJournalByteBoundaryRecovery(t *testing.T) {
	log, _, _ := journaledDriftRun(t, 1, 6)
	file := journalFileBytes(log)

	// boundaries[k] = file offset where record k's frame ends.
	boundaries := []int{binio.JournalHeaderLen}
	for _, r := range log {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+r.frameSize())
	}

	dir := t.TempDir()
	path := filepath.Join(dir, journalFileName)
	probe := []byte("post-crash probe record")
	for _, cut := range byteSweepCuts(log, len(file)) {
		if err := os.WriteFile(path, file[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := openJournal(dir, JournalConfig{SyncEvery: time.Hour, CompactBytes: -1}, osFS{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		// Records that were fully durable before the kill survive — exactly
		// those, never a torn or invented one.
		kept := 0
		for k, end := range boundaries {
			if end <= cut && k > 0 {
				kept = k
			}
		}
		if cut < binio.JournalHeaderLen {
			kept = 0 // torn header: rebuilt fresh
		}
		type pair struct{ full, delta []byte }
		want := map[string]*pair{}
		for _, r := range log[:kept] {
			p := want[r.id]
			if p == nil {
				p = &pair{}
				want[r.id] = p
			}
			switch r.kind {
			case kindFull:
				p.full, p.delta = r.blob, nil
			case kindDelta:
				p.delta = r.blob
			}
		}
		if len(j.latest) != len(want) {
			t.Fatalf("cut %d: recovered %d links, want %d", cut, len(j.latest), len(want))
		}
		for id, p := range want {
			rec := j.latest[id]
			if rec == nil {
				t.Fatalf("cut %d: link %s lost", cut, id)
			}
			if !bytes.Equal(rec.full, p.full) {
				t.Fatalf("cut %d: latest full for %s differs from the durable prefix", cut, id)
			}
			if !bytes.Equal(rec.delta, p.delta) {
				t.Fatalf("cut %d: latest delta for %s differs from the durable prefix", cut, id)
			}
		}
		// The truncated file must scan clean and end exactly at the last
		// durable boundary.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != boundaries[kept] && !(cut < binio.JournalHeaderLen && len(data) == binio.JournalHeaderLen) {
			t.Fatalf("cut %d: recovered file is %d bytes, want boundary %d", cut, len(data), boundaries[kept])
		}
		// And the next session's appends must land intact on the recovered
		// tail.
		w := j.NewWriter()
		w.AppendDelta("l0", probe)
		w.Flush()
		if err := j.Err(); err != nil {
			t.Fatalf("cut %d: post-recovery append failed: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		data, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		region, err := binio.CheckJournalHeader(data)
		if err != nil {
			t.Fatalf("cut %d: recovered+appended header: %v", cut, err)
		}
		last := []byte(nil)
		if _, err := binio.ScanJournal(region, func(p []byte) error { last = p; return nil }); err != nil {
			t.Fatalf("cut %d: recovered+appended journal does not scan: %v", cut, err)
		}
		_, _, blob, err := parseJournalPayload(last)
		if err != nil || !bytes.Equal(blob, probe) {
			t.Fatalf("cut %d: probe record did not survive (%v)", cut, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Tentpole property 3: injected write failures (crashFS)
// ---------------------------------------------------------------------------

// crashFS is the injectable journalFS: it forwards to the real filesystem
// until a byte budget runs out, then kills the process's writing mid-write —
// appends stop partway (leaving a genuinely torn tail on disk, as a real
// kill would), atomic writes vanish entirely (rename never happened), and
// everything after the kill fails.
type crashFS struct {
	budget int
	killed bool
}

func (c *crashFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (c *crashFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

var errCrashed = errors.New("crashfs: killed")

func (c *crashFS) WriteFileAtomic(path string, data []byte) error {
	if c.killed {
		return errCrashed
	}
	if len(data) > c.budget {
		// Killed before the rename: the file never changes.
		c.budget = 0
		c.killed = true
		return errCrashed
	}
	c.budget -= len(data)
	return writeFileAtomic(path, data)
}

func (c *crashFS) OpenAppend(path string) (journalHandle, error) {
	if c.killed {
		return nil, errCrashed
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &crashHandle{c: c, f: f}, nil
}

type crashHandle struct {
	c *crashFS
	f *os.File
}

func (h *crashHandle) Write(p []byte) (int, error) {
	if h.c.killed {
		return 0, errCrashed
	}
	if len(p) > h.c.budget {
		// The kill lands mid-write: a prefix reaches the disk.
		n := h.c.budget
		h.c.budget = 0
		h.c.killed = true
		if n > 0 {
			h.f.Write(p[:n])
		}
		return n, errCrashed
	}
	h.c.budget -= len(p)
	return h.f.Write(p)
}

func (h *crashHandle) Sync() error {
	if h.c.killed {
		return errCrashed
	}
	return h.f.Sync()
}

func (h *crashHandle) Close() error {
	if h.c.killed {
		h.f.Close()
		return errCrashed
	}
	return h.f.Close()
}

// TestJournalCrashInjection drives full journaled drift runs over a
// filesystem that kills writing after every interesting byte budget —
// record boundaries ±1, a stride, and budgets small enough to land inside
// compaction's snapshot and rewrite phases — and proves the recovery
// invariant each time: the reopened state is byte-identical to SOME clean
// prefix of the emitted record stream, and the recovered journal keeps
// accepting appends.
func TestJournalCrashInjection(t *testing.T) {
	const nLinks, windows = 2, 8
	// Ground truth: one uninterrupted run's emission log (the engine is
	// deterministic, so every injected run emits the same stream).
	log, _, _ := journaledDriftRun(t, nLinks, windows)

	// Precompute every clean-prefix state tuple the recovery may land on.
	recon := driftFixture(t, nLinks)
	type tuple = string // concatenated per-link exports, keyed deterministically
	validStates := map[tuple]int{}
	tupleOf := func(states map[string][]byte) tuple {
		var b bytes.Buffer
		for i := 0; i < nLinks; i++ {
			id := fmt.Sprintf("l%d", i)
			fmt.Fprintf(&b, "%d:", len(states[id]))
			b.Write(states[id])
		}
		return b.String()
	}
	for k := 0; k <= len(log); k++ {
		validStates[tupleOf(expectedStates(t, recon, log[:k]))] = k
	}

	// Byte budgets: the journal-write boundaries ±1 plus a coarse stride.
	// (The budget counts every byte the journal writes — appends, snapshot
	// compactions, journal rewrites — so with compaction enabled small
	// budgets kill inside compaction too.)
	budgets := map[int]struct{}{0: {}, 1: {}}
	off := 0
	for _, r := range log {
		off += r.frameSize()
		budgets[off-1] = struct{}{}
		budgets[off] = struct{}{}
		budgets[off+1] = struct{}{}
	}
	for b := 0; b < off; b += 16384 {
		budgets[b] = struct{}{}
	}

	restoredEng := driftFixture(t, nLinks)
	for _, compactBytes := range []int64{-1, 20 << 10} {
		for budget := range budgets {
			dir := t.TempDir()
			fs := &crashFS{budget: budget}
			eng := driftFixture(t, nLinks)
			if err := eng.Calibrate(context.Background(), 150); err != nil {
				t.Fatal(err)
			}
			j, err := openJournal(dir, JournalConfig{SyncEvery: time.Millisecond, CompactBytes: compactBytes}, fs)
			if err != nil {
				// Killed before the journal even opened (the header write):
				// the run proceeds unjournaled and recovery must land on the
				// empty prefix.
				if !errors.Is(err, errCrashed) {
					t.Fatalf("budget %d: open: %v", budget, err)
				}
			} else {
				if err := eng.SetJournal(j); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Run(context.Background(), windows); err != nil {
				t.Fatalf("budget %d: a journal crash must never kill the run: %v", budget, err)
			}
			if j != nil {
				j.Close() // reports the injected failure; the crash is the point
			}

			// "Reboot": reopen the directory with a healthy filesystem and
			// restore a fresh engine.
			j2, err := openJournal(dir, JournalConfig{SyncEvery: time.Hour, CompactBytes: -1}, osFS{})
			if err != nil {
				t.Fatalf("compact %d budget %d: reopen: %v", compactBytes, budget, err)
			}
			ids, err := j2.Restore(restoredEng)
			if err != nil {
				t.Fatalf("compact %d budget %d: restore: %v", compactBytes, budget, err)
			}
			got := map[string][]byte{}
			for _, id := range ids {
				rec, err := restoredEng.ExportLink(id)
				if err != nil {
					t.Fatal(err)
				}
				got[id] = rec
			}
			k, ok := validStates[tupleOf(got)]
			if !ok {
				t.Fatalf("compact %d budget %d: recovered state matches no clean prefix of the emission log", compactBytes, budget)
			}
			if budget > 0 && len(ids) == 0 && k != 0 {
				t.Fatalf("compact %d budget %d: restored no links but matched prefix %d", compactBytes, budget, k)
			}
			// The recovered journal must accept the next session's appends.
			w := j2.NewWriter()
			w.AppendDelta("l0", []byte("resumed"))
			w.Flush()
			if err := j2.Err(); err != nil {
				t.Fatalf("compact %d budget %d: post-recovery append: %v", compactBytes, budget, err)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("compact %d budget %d: close: %v", compactBytes, budget, err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Satellites: store round-trip property, ErrRunning typing
// ---------------------------------------------------------------------------

// TestStoreRoundTripByteIdentity is the save→load→save property across
// every drift preset and several seeds: the second save must be
// byte-identical to the first, including for quarantined links (the
// furniture-move step trips the jump discriminator) and links still
// flagged for recalibration.
func TestStoreRoundTripByteIdentity(t *testing.T) {
	presets := []struct {
		name    string
		preset  scenario.DriftPreset
		windows int
	}{
		{"NoDrift", scenario.NoDrift(), 10},
		{"GainWalk", scenario.GainWalk(8), 10},
		{"CFOWalk", scenario.CFOWalk(60, 0.05), 10},
		// The mid-run step plus the post-step windows it takes for the jump
		// discriminator to latch: this preset quarantines links, so the
		// round-trip covers quarantined/recalibration-flagged state too.
		{"FurnitureMove", scenario.FurnitureMove(350), 16},
		{"AmbientDrift", scenario.AmbientDrift(4, 6, 200), 10},
	}
	sawQuarantine := false
	for _, tc := range presets {
		for _, seed := range []int64{1, 5, 9} {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				pol := adapt.Policy{RederiveEvery: 4}
				build := func() *engine.Engine {
					e := engine.New(engine.Config{Workers: 1, WindowSize: 25, Adaptation: &pol})
					s, err := scenario.LinkCase(int(seed%5)+1, seed)
					if err != nil {
						t.Fatal(err)
					}
					stream, err := s.NewDriftStream(tc.preset, 1)
					if err != nil {
						t.Fatal(err)
					}
					if err := e.AddLink("l", core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets()), stream); err != nil {
						t.Fatal(err)
					}
					return e
				}
				a := build()
				if err := a.Calibrate(context.Background(), 150); err != nil {
					t.Fatal(err)
				}
				if err := a.Run(context.Background(), tc.windows); err != nil {
					t.Fatal(err)
				}
				for _, lm := range a.Metrics().PerLink {
					if lm.Health.State == adapt.StateQuarantined || lm.Health.NeedsRecalibration {
						sawQuarantine = true
					}
				}
				dir1, dir2 := t.TempDir(), t.TempDir()
				if _, err := (Store{Dir: dir1}).Save(a); err != nil {
					t.Fatal(err)
				}
				b := build()
				if _, err := (Store{Dir: dir1}).Load(b); err != nil {
					t.Fatal(err)
				}
				if _, err := (Store{Dir: dir2}).Save(b); err != nil {
					t.Fatal(err)
				}
				r1, err := os.ReadFile(Store{Dir: dir1}.path("l"))
				if err != nil {
					t.Fatal(err)
				}
				r2, err := os.ReadFile(Store{Dir: dir2}.path("l"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(r1, r2) {
					t.Fatal("save→load→save is not byte-identical")
				}
			})
		}
	}
	if !sawQuarantine {
		t.Error("no preset produced a quarantined or recalibration-flagged link — the property is under-exercised")
	}
}

// TestStoreErrRunning pins the typed save/load-while-running failure.
func TestStoreErrRunning(t *testing.T) {
	eng := driftFixture(t, 1)
	if err := eng.Calibrate(context.Background(), 150); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store := Store{Dir: dir}
	if _, err := store.Save(eng); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx, 0) }()
	// Wait until the run is actually scoring.
	for eng.Metrics().WindowsScored == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := store.Save(eng); !errors.Is(err, ErrRunning) || !errors.Is(err, engine.ErrRunning) {
		t.Errorf("Save while running: err = %v, want fleet.ErrRunning wrapping engine.ErrRunning", err)
	}
	if _, err := store.Load(eng); !errors.Is(err, ErrRunning) {
		t.Errorf("Load while running: err = %v, want fleet.ErrRunning", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestJournalRefusesForeignFile: a file with a valid length but a foreign
// magic or version must be refused, not clobbered.
func TestJournalRefusesForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFileName)
	foreign := []byte("NOTJRNL-this is some other format")
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openJournal(dir, JournalConfig{}, osFS{}); !errors.Is(err, binio.ErrBadJournal) {
		t.Fatalf("foreign file: err = %v, want ErrBadJournal", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, foreign) {
		t.Fatal("refusal modified the foreign file")
	}
}
