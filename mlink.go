// Package mlink is the public facade of the repository: a device-free human
// detection library for commodity WiFi links, reproducing "On Multipath
// Link Characterization and Adaptation for Device-Free Human Detection"
// (Zhou et al., IEEE ICDCS 2015).
//
// The facade wires the layers together for the common path — simulate (or
// stream) CSI from a link, calibrate a static profile, and score monitoring
// windows:
//
//	sys, _ := mlink.NewClassroomSystem(mlink.SchemeSubcarrierPath, 1)
//	_ = sys.Calibrate(300)
//	dec, _ := sys.DetectPresence(25, &mlink.Person{X: 3, Y: 4})
//
// For a whole deployment, Engine monitors many links at once — parallel
// calibration, pooled window scoring and fused site verdicts (see
// NewEngine and cmd/mlink-serve).
//
// Lower-level building blocks live in the internal packages: propagation
// (ray tracing), csi (Intel-5300-style extraction), core (multipath factor,
// subcarrier and path weighting, detector), engine (concurrent multi-link
// monitoring), music (AoA), csinet (distributed collection), scenario (the
// paper's testbeds), experiments (figure-by-figure reproduction).
package mlink

import (
	"errors"
	"fmt"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

// Scheme selects the detection variant (§V of the paper).
type Scheme = core.Scheme

// The three schemes the paper compares.
const (
	SchemeBaseline       = core.SchemeBaseline
	SchemeSubcarrier     = core.SchemeSubcarrier
	SchemeSubcarrierPath = core.SchemeSubcarrierPath
)

// Decision is a monitoring verdict (score vs threshold).
type Decision = core.Decision

// Frame is one packet's CSI.
type Frame = csi.Frame

// ErrNotCalibrated is returned when detection is attempted before
// Calibrate.
var ErrNotCalibrated = errors.New("mlink: system not calibrated")

// Person is a human target at room coordinates (metres).
type Person struct {
	X, Y float64
	// Radius is the body cylinder radius; 0 means a typical adult (0.2 m).
	Radius float64
	// RCS is the radar cross-section; 0 means a typical adult (0.8 m²).
	RCS float64
}

func (p *Person) body() body.Body {
	b := body.Default(geom.Point{X: p.X, Y: p.Y})
	if p.Radius > 0 {
		b.Radius = p.Radius
	}
	if p.RCS > 0 {
		b.RCS = p.RCS
	}
	return b
}

// System binds a simulated link to a detector: the one-stop entry point for
// examples and quick experiments.
type System struct {
	Scenario  *scenario.Scenario
	extractor *csi.Extractor
	cfg       core.Config
	detector  *core.Detector

	adaptPol   *adapt.Policy
	adapter    *adapt.Adapter
	nullScores []float64
}

// NewClassroomSystem builds the paper's 4 m classroom link (§III-A).
func NewClassroomSystem(scheme Scheme, seed int64) (*System, error) {
	s, err := scenario.Classroom(seed)
	if err != nil {
		return nil, fmt.Errorf("mlink: %w", err)
	}
	return newSystem(s, scheme)
}

// NewLinkCaseSystem builds one of the five evaluation links of Fig. 6
// (n ∈ [1,5]).
func NewLinkCaseSystem(n int, scheme Scheme, seed int64) (*System, error) {
	s, err := scenario.LinkCase(n, seed)
	if err != nil {
		return nil, fmt.Errorf("mlink: %w", err)
	}
	return newSystem(s, scheme)
}

// NewSystem wraps an existing scenario.
func NewSystem(s *scenario.Scenario, scheme Scheme) (*System, error) {
	return newSystem(s, scheme)
}

func newSystem(s *scenario.Scenario, scheme Scheme) (*System, error) {
	x, err := s.NewExtractor(1)
	if err != nil {
		return nil, fmt.Errorf("mlink: %w", err)
	}
	cfg := core.DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
	return &System{Scenario: s, extractor: x, cfg: cfg}, nil
}

// Capture simulates one packet with the given people present and returns
// its CSI frame.
func (s *System) Capture(people ...*Person) *Frame {
	return s.extractor.Capture(bodiesOf(people))
}

// CaptureWindow simulates n packets with a fixed set of people.
func (s *System) CaptureWindow(n int, people ...*Person) []*Frame {
	return s.extractor.CaptureN(n, bodiesOf(people))
}

func bodiesOf(people []*Person) []body.Body {
	var out []body.Body
	for _, p := range people {
		if p == nil {
			continue
		}
		out = append(out, p.body())
	}
	return out
}

// Calibrate captures n empty-room packets, builds the static profile, and
// calibrates a decision threshold from held-out self scores (§IV-C
// calibration stage). It must be called before DetectPresence or
// ScoreWindow.
func (s *System) Calibrate(n int) error {
	if n < 50 {
		n = 50
	}
	cal := s.extractor.CaptureN(n, nil)
	profile, err := core.Calibrate(s.cfg, cal)
	if err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	det, err := core.NewDetector(s.cfg, profile)
	if err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	holdout := s.extractor.CaptureN(n, nil)
	null, err := det.SelfScores(holdout, 25, 25)
	if err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	if _, err := det.CalibrateThreshold(null, 0.95, 1.3); err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	s.detector = det
	s.nullScores = null
	s.adapter = nil
	if s.adaptPol != nil {
		adapter, err := adapt.NewAdapter(*s.adaptPol, det, null)
		if err != nil {
			return fmt.Errorf("mlink calibrate: %w", err)
		}
		s.adapter = adapter
	}
	return nil
}

// EnableAdaptation turns on online adaptation for this link: every window
// passed through DetectPresence or DetectWindow refreshes the profile when
// confidently empty, re-derives the threshold, and tracks drift health.
// With no argument the default policy is used. Works before or after
// Calibrate; a later (re-)Calibrate rebuilds the adapter.
func (s *System) EnableAdaptation(policy ...AdaptationPolicy) error {
	p := AdaptationPolicy{}
	if len(policy) > 0 {
		p = policy[0]
	}
	s.adaptPol = &p
	if s.detector == nil {
		return nil
	}
	adapter, err := adapt.NewAdapter(p, s.detector, s.nullScores)
	if err != nil {
		return fmt.Errorf("mlink adaptation: %w", err)
	}
	s.adapter = adapter
	return nil
}

// Health returns the link's adaptation snapshot (the zero value when
// adaptation is disabled or the system is not calibrated).
func (s *System) Health() LinkHealth {
	if s.adapter == nil {
		return LinkHealth{}
	}
	return s.adapter.Health()
}

// Detector exposes the underlying detector (nil before Calibrate).
func (s *System) Detector() *core.Detector { return s.detector }

// DetectPresence captures a monitoring window of n packets with the given
// people present (nil for an empty room) and returns the verdict.
func (s *System) DetectPresence(n int, people ...*Person) (Decision, error) {
	if s.detector == nil {
		return Decision{}, ErrNotCalibrated
	}
	return s.DetectWindow(s.CaptureWindow(n, people...))
}

// DetectWindow scores an externally collected window against the threshold
// and, when adaptation is enabled, feeds the outcome to the adaptation
// loop.
func (s *System) DetectWindow(window []*Frame) (Decision, error) {
	if s.detector == nil {
		return Decision{}, ErrNotCalibrated
	}
	dec, err := s.detector.Detect(window)
	if err != nil {
		return Decision{}, err
	}
	if s.adapter != nil {
		if _, err := s.adapter.Observe(window, dec); err != nil {
			return Decision{}, fmt.Errorf("mlink adaptation: %w", err)
		}
	}
	return dec, nil
}

// ScoreWindow scores an externally collected window (e.g. frames received
// over csinet).
func (s *System) ScoreWindow(window []*Frame) (float64, error) {
	if s.detector == nil {
		return 0, ErrNotCalibrated
	}
	return s.detector.Score(window)
}

// AssessLink measures the link's mean multipath factor from n packets — the
// deployment-assessment metric of §IV-A (higher mean μ on a subcarrier
// flags destructive superposition, i.e. higher detection sensitivity).
func (s *System) AssessLink(n int) (meanMu float64, perSubcarrier []float64, err error) {
	if n < 1 {
		n = 1
	}
	const ant = 1
	acc := make([]float64, s.Scenario.Grid.Len())
	for i := 0; i < n; i++ {
		f := s.extractor.Capture(nil)
		mu, err := core.MultipathFactors(f.CSI[ant], s.Scenario.Grid)
		if err != nil {
			return 0, nil, fmt.Errorf("mlink assess: %w", err)
		}
		for k, v := range mu {
			acc[k] += v / float64(n)
		}
	}
	mean, err := core.MeanMultipathFactor(acc)
	if err != nil {
		return 0, nil, fmt.Errorf("mlink assess: %w", err)
	}
	return mean, acc, nil
}
