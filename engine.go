package mlink

import (
	"context"
	"fmt"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/engine"
	"mlink/internal/scenario"
)

// Fleet-level types, re-exported from the internal engine so facade users
// can monitor many links without reaching into internal packages.
type (
	// SiteVerdict is the fused presence verdict over all monitored links.
	SiteVerdict = engine.SiteVerdict
	// LinkDecision pairs a link ID with its latest decision, fusion weight
	// and adaptation health.
	LinkDecision = engine.LinkDecision
	// FusionPolicy combines per-link decisions into a site verdict.
	FusionPolicy = engine.FusionPolicy
	// KOfN fuses by counting positive links against a threshold K.
	KOfN = engine.KOfN
	// WeightedKOfN fuses by quality-weighted voting: link votes carry the
	// characterized mean multipath factor μ scaled by adaptation health.
	WeightedKOfN = engine.WeightedKOfN
	// MaxScore fuses by the maximum threshold-normalized link score.
	MaxScore = engine.MaxScore
	// EngineMetrics snapshots the engine's counters.
	EngineMetrics = engine.Metrics
	// LinkMetrics is one link's slice of the metrics block.
	LinkMetrics = engine.LinkMetrics
	// AdaptationPolicy parameterizes per-link online adaptation (the zero
	// value selects the documented defaults).
	AdaptationPolicy = adapt.Policy
	// LinkHealth is a link's adaptation status snapshot.
	LinkHealth = adapt.Health
	// HealthState classifies a link's adaptation health.
	HealthState = adapt.State
	// DriftPreset parameterizes a first-class environment-drift scenario.
	DriftPreset = scenario.DriftPreset
)

// Re-exported adaptation health states.
const (
	HealthUnknown     = adapt.StateUnknown
	HealthHealthy     = adapt.StateHealthy
	HealthDrifting    = adapt.StateDrifting
	HealthQuarantined = adapt.StateQuarantined
)

// Drift presets for simulated links (see internal/scenario).
var (
	// NoDrift is the control preset: capture impairments only.
	NoDrift = scenario.NoDrift
	// GainWalkDrift ramps receive gain linearly (dB per minute).
	GainWalkDrift = scenario.GainWalk
	// CFOWalkDrift models temperature-like oscillator drift.
	CFOWalkDrift = scenario.CFOWalk
	// FurnitureMoveDrift is a step change at the given packet.
	FurnitureMoveDrift = scenario.FurnitureMove
)

// EngineConfig parameterizes a multi-link Engine.
type EngineConfig struct {
	// Workers bounds the calibration and scoring pools (0 = GOMAXPROCS).
	Workers int
	// WindowSize is the monitoring window in packets (0 = 25).
	WindowSize int
	// Fusion is the site-verdict policy (nil = KOfN{K: 1}).
	Fusion FusionPolicy
	// Adaptation enables per-link online adaptation for every link
	// calibrated after it is set (nil = frozen profiles, the pre-PR 3
	// behaviour). EnableAdaptation is the ergonomic setter.
	Adaptation *AdaptationPolicy
	// OnDecision, when non-nil, observes every scored window. It is called
	// from scoring workers and must be safe for concurrent use.
	OnDecision func(linkID string, d Decision)
}

// Engine monitors a fleet of links concurrently: per-link calibration on a
// bounded worker pool, streaming window scoring, optional online
// adaptation, and fused site verdicts — the deployment-scale counterpart of
// the single-link System.
type Engine struct {
	eng      *engine.Engine
	sources  []phasedSwitch
	sourceBy map[string]phasedSwitch
}

// phasedSwitch is a source whose occupancy activates once calibration ends.
type phasedSwitch interface{ setMonitoring(bool) }

// NewEngine builds an empty fleet engine.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{
		eng: engine.New(engine.Config{
			Workers:    cfg.Workers,
			WindowSize: cfg.WindowSize,
			Fusion:     cfg.Fusion,
			Adaptation: cfg.Adaptation,
			OnDecision: cfg.OnDecision,
		}),
		sourceBy: make(map[string]phasedSwitch),
	}
}

// EnableAdaptation turns on per-link online adaptation (profile refresh,
// threshold re-derivation, drift quarantine) for links calibrated from here
// on. Call it before Calibrate; with no argument the default policy is
// used. Rejected while the engine is running.
func (e *Engine) EnableAdaptation(policy ...AdaptationPolicy) error {
	p := AdaptationPolicy{}
	if len(policy) > 0 {
		p = policy[0]
	}
	if err := e.eng.SetAdaptation(&p); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	return nil
}

// phasedSource streams simulated captures from a System, with the link's
// people entering the room only once calibration has finished — the §IV-C
// calibration stage is an empty room by definition. Frames are drawn from a
// pool and written via the allocation-free CaptureInto path; the engine
// recycles them after scoring.
type phasedSource struct {
	sys        *System
	bodies     []body.Body
	monitoring bool
	pool       *csi.FramePool
}

func (s *phasedSource) Next() (*Frame, error) {
	bodies := s.bodies
	if !s.monitoring {
		bodies = nil
	}
	f := s.pool.Get()
	if err := s.sys.extractor.CaptureInto(f, bodies); err != nil {
		s.pool.Put(f)
		return nil, err
	}
	return f, nil
}

// Recycle implements engine.FrameRecycler.
func (s *phasedSource) Recycle(f *Frame) { s.pool.Put(f) }

func (s *phasedSource) setMonitoring(on bool) { s.monitoring = on }

// phasedDriftSource is phasedSource over a drifting capture stream.
type phasedDriftSource struct {
	stream     *scenario.DriftStream
	bodies     []body.Body
	monitoring bool
}

func (s *phasedDriftSource) Next() (*Frame, error) {
	if s.monitoring {
		s.stream.SetBodies(s.bodies)
	} else {
		s.stream.SetBodies(nil)
	}
	return s.stream.Next()
}

// Recycle implements engine.FrameRecycler.
func (s *phasedDriftSource) Recycle(f *Frame) { s.stream.Recycle(f) }

func (s *phasedDriftSource) setMonitoring(on bool) { s.monitoring = on }

// AddLink adopts a System as one monitored link under a unique ID. The
// engine owns the system's extractor from here on — don't keep capturing
// through the System concurrently. People, if given, stand in the room for
// every capture after calibration (an occupied link); none means an empty
// room.
func (e *Engine) AddLink(id string, sys *System, people ...*Person) error {
	if sys == nil {
		return fmt.Errorf("mlink: nil system for link %q", id)
	}
	src := &phasedSource{
		sys:    sys,
		bodies: bodiesOf(people),
		pool:   csi.NewFramePool(len(sys.extractor.Env.RX.Elements), sys.extractor.Grid.Len()),
	}
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, src)
	e.sourceBy[id] = src
	return nil
}

// AddDriftLink adopts a System as a monitored link whose environment drifts
// per the preset (gain walk, CFO walk, furniture move) — the adversarial
// scenarios EnableAdaptation exists for. People, if given, enter after
// calibration, as in AddLink.
func (e *Engine) AddDriftLink(id string, sys *System, preset DriftPreset, people ...*Person) error {
	if sys == nil {
		return fmt.Errorf("mlink: nil system for link %q", id)
	}
	stream, err := sys.Scenario.NewDriftStream(preset, 1)
	if err != nil {
		return fmt.Errorf("mlink: drift link %q: %w", id, err)
	}
	src := &phasedDriftSource{stream: stream, bodies: bodiesOf(people)}
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, src)
	e.sourceBy[id] = src
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string { return e.eng.Links() }

// LinksInto is Links appending into a caller-owned buffer (reset to length
// zero first) — the allocation-free variant for report loops.
func (e *Engine) LinksInto(dst []string) []string { return e.eng.LinksInto(dst) }

// Calibrate calibrates every link in parallel from n empty-room packets
// each (plus n held-out packets for threshold calibration). On success the
// links' people, if any, enter their rooms for subsequent monitoring.
func (e *Engine) Calibrate(n int) error {
	if err := e.eng.Calibrate(context.Background(), n); err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	for _, src := range e.sources {
		src.setMonitoring(true)
	}
	return nil
}

// Recalibrate rebuilds one link's profile, threshold and adapter from a
// fresh empty-room capture — the recovery path for a link whose health
// reports NeedsRecalibration. The caller asserts the room is empty again:
// for simulated links the source is switched back to its calibration phase
// (people leave) for the duration, exactly as during Calibrate, and
// re-enters monitoring afterwards.
func (e *Engine) Recalibrate(linkID string, n int) error {
	if src, ok := e.sourceBy[linkID]; ok {
		src.setMonitoring(false)
		defer src.setMonitoring(true)
	}
	if err := e.eng.Recalibrate(context.Background(), linkID, n); err != nil {
		return fmt.Errorf("mlink recalibrate: %w", err)
	}
	return nil
}

// Run monitors the fleet until every link has scored windowsPerLink windows
// (0 = until ctx is cancelled or the sources end).
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	if err := e.eng.Run(ctx, windowsPerLink); err != nil {
		return fmt.Errorf("mlink run: %w", err)
	}
	return nil
}

// Verdict fuses the latest per-link decisions into the site verdict. Each
// LinkDecision carries the link's fusion weight and adaptation health.
func (e *Engine) Verdict() (SiteVerdict, error) {
	v, err := e.eng.Verdict()
	if err != nil {
		return SiteVerdict{}, fmt.Errorf("mlink verdict: %w", err)
	}
	return v, nil
}

// VerdictInto is Verdict reusing the caller's SiteVerdict (notably its Links
// slice), so a steady-state report loop fuses the fleet without allocating.
// Safe to call while the engine runs: link state is read from lock-free
// snapshots and never blocks the scoring shards.
func (e *Engine) VerdictInto(v *SiteVerdict) error {
	if err := e.eng.VerdictInto(v); err != nil {
		return fmt.Errorf("mlink verdict: %w", err)
	}
	return nil
}

// Metrics snapshots fleet-wide and per-link monitoring counters.
func (e *Engine) Metrics() EngineMetrics { return e.eng.Metrics() }

// MetricsInto is Metrics reusing the caller's struct (notably its PerLink
// slice) — the allocation-free variant for report loops.
func (e *Engine) MetricsInto(m *EngineMetrics) { e.eng.MetricsInto(m) }
