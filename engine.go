package mlink

import (
	"context"
	"fmt"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/engine"
)

// Fleet-level types, re-exported from the internal engine so facade users
// can monitor many links without reaching into internal packages.
type (
	// SiteVerdict is the fused presence verdict over all monitored links.
	SiteVerdict = engine.SiteVerdict
	// LinkDecision pairs a link ID with its latest decision.
	LinkDecision = engine.LinkDecision
	// FusionPolicy combines per-link decisions into a site verdict.
	FusionPolicy = engine.FusionPolicy
	// KOfN fuses by counting positive links against a threshold K.
	KOfN = engine.KOfN
	// MaxScore fuses by the maximum threshold-normalized link score.
	MaxScore = engine.MaxScore
	// EngineMetrics snapshots the engine's counters.
	EngineMetrics = engine.Metrics
	// LinkMetrics is one link's slice of the metrics block.
	LinkMetrics = engine.LinkMetrics
)

// EngineConfig parameterizes a multi-link Engine.
type EngineConfig struct {
	// Workers bounds the calibration and scoring pools (0 = GOMAXPROCS).
	Workers int
	// WindowSize is the monitoring window in packets (0 = 25).
	WindowSize int
	// Fusion is the site-verdict policy (nil = KOfN{K: 1}).
	Fusion FusionPolicy
	// OnDecision, when non-nil, observes every scored window. It is called
	// from scoring workers and must be safe for concurrent use.
	OnDecision func(linkID string, d Decision)
}

// Engine monitors a fleet of links concurrently: per-link calibration on a
// bounded worker pool, streaming window scoring, and fused site verdicts —
// the deployment-scale counterpart of the single-link System.
type Engine struct {
	eng     *engine.Engine
	sources []*phasedSource
}

// NewEngine builds an empty fleet engine.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: engine.New(engine.Config{
		Workers:    cfg.Workers,
		WindowSize: cfg.WindowSize,
		Fusion:     cfg.Fusion,
		OnDecision: cfg.OnDecision,
	})}
}

// phasedSource streams simulated captures from a System, with the link's
// people entering the room only once calibration has finished — the §IV-C
// calibration stage is an empty room by definition. Frames are drawn from a
// pool and written via the allocation-free CaptureInto path; the engine
// recycles them after scoring.
type phasedSource struct {
	sys        *System
	bodies     []body.Body
	monitoring bool
	pool       *csi.FramePool
}

func (s *phasedSource) Next() (*Frame, error) {
	bodies := s.bodies
	if !s.monitoring {
		bodies = nil
	}
	f := s.pool.Get()
	if err := s.sys.extractor.CaptureInto(f, bodies); err != nil {
		s.pool.Put(f)
		return nil, err
	}
	return f, nil
}

// Recycle implements engine.FrameRecycler.
func (s *phasedSource) Recycle(f *Frame) { s.pool.Put(f) }

// AddLink adopts a System as one monitored link under a unique ID. The
// engine owns the system's extractor from here on — don't keep capturing
// through the System concurrently. People, if given, stand in the room for
// every capture after calibration (an occupied link); none means an empty
// room.
func (e *Engine) AddLink(id string, sys *System, people ...*Person) error {
	if sys == nil {
		return fmt.Errorf("mlink: nil system for link %q", id)
	}
	src := &phasedSource{
		sys:    sys,
		bodies: bodiesOf(people),
		pool:   csi.NewFramePool(len(sys.extractor.Env.RX.Elements), sys.extractor.Grid.Len()),
	}
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, src)
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string { return e.eng.Links() }

// Calibrate calibrates every link in parallel from n empty-room packets
// each (plus n held-out packets for threshold calibration). On success the
// links' people, if any, enter their rooms for subsequent monitoring.
func (e *Engine) Calibrate(n int) error {
	if err := e.eng.Calibrate(context.Background(), n); err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	for _, src := range e.sources {
		src.monitoring = true
	}
	return nil
}

// Run monitors the fleet until every link has scored windowsPerLink windows
// (0 = until ctx is cancelled or the sources end).
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	if err := e.eng.Run(ctx, windowsPerLink); err != nil {
		return fmt.Errorf("mlink run: %w", err)
	}
	return nil
}

// Verdict fuses the latest per-link decisions into the site verdict.
func (e *Engine) Verdict() (SiteVerdict, error) {
	v, err := e.eng.Verdict()
	if err != nil {
		return SiteVerdict{}, fmt.Errorf("mlink verdict: %w", err)
	}
	return v, nil
}

// Metrics snapshots fleet-wide and per-link monitoring counters.
func (e *Engine) Metrics() EngineMetrics { return e.eng.Metrics() }
