package mlink

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/engine"
	"mlink/internal/fleet"
	"mlink/internal/scenario"
	"mlink/internal/serve"
	"mlink/internal/supervise"
)

// Fleet-level types, re-exported from the internal engine so facade users
// can monitor many links without reaching into internal packages.
type (
	// SiteVerdict is the fused presence verdict over all monitored links.
	SiteVerdict = engine.SiteVerdict
	// LinkDecision pairs a link ID with its latest decision, fusion weight
	// and adaptation health.
	LinkDecision = engine.LinkDecision
	// FusionPolicy combines per-link decisions into a site verdict.
	FusionPolicy = engine.FusionPolicy
	// KOfN fuses by counting positive links against a threshold K.
	KOfN = engine.KOfN
	// WeightedKOfN fuses by quality-weighted voting: link votes carry the
	// characterized mean multipath factor μ scaled by adaptation health.
	WeightedKOfN = engine.WeightedKOfN
	// MaxScore fuses by the maximum threshold-normalized link score.
	MaxScore = engine.MaxScore
	// EngineMetrics snapshots the engine's counters.
	EngineMetrics = engine.Metrics
	// LinkMetrics is one link's slice of the metrics block.
	LinkMetrics = engine.LinkMetrics
	// AdaptationPolicy parameterizes per-link online adaptation (the zero
	// value selects the documented defaults).
	AdaptationPolicy = adapt.Policy
	// LinkHealth is a link's adaptation status snapshot.
	LinkHealth = adapt.Health
	// HealthState classifies a link's adaptation health.
	HealthState = adapt.State
	// DriftPreset parameterizes a first-class environment-drift scenario.
	DriftPreset = scenario.DriftPreset
	// FleetConfig parameterizes the cross-link drift coordinator.
	FleetConfig = fleet.Config
	// FleetState classifies the site's cross-link drift evidence.
	FleetState = fleet.State
	// FleetReport is one coordination tick's classification and counters.
	FleetReport = fleet.Report
	// JournalConfig parameterizes crash-safe online persistence
	// (EnableJournal): fsync cadence and compaction threshold.
	JournalConfig = fleet.JournalConfig
	// SupervisionPolicy parameterizes per-link source supervision
	// (EnableSupervision): ring size, staleness and down thresholds,
	// reconnect backoff (the zero value selects the documented defaults).
	SupervisionPolicy = supervise.Policy
	// LinkLifecycle is a supervised link's connectivity state.
	LinkLifecycle = adapt.Lifecycle
	// Coverage reports how much of the fleet stood behind a SiteVerdict.
	Coverage = engine.Coverage
	// ChaosConfig parameterizes deterministic fault injection for a
	// chaos-wrapped link (AddChaosLink).
	ChaosConfig = scenario.ChaosConfig
	// ChaosSource is the fault-injecting source AddChaosLink returns; drive
	// it with Arm/Stall/Resume and read ground truth from Stats.
	ChaosSource = scenario.ChaosSource
	// ChaosStats counts the faults a ChaosSource actually injected.
	ChaosStats = scenario.ChaosStats
)

// Re-exported fleet classifications.
const (
	FleetQuiet      = fleet.StateQuiet
	FleetLocalized  = fleet.StateLocalized
	FleetAmbient    = fleet.StateAmbient
	FleetStepChange = fleet.StateStepChange
)

// Re-exported adaptation health states.
const (
	HealthUnknown     = adapt.StateUnknown
	HealthHealthy     = adapt.StateHealthy
	HealthDrifting    = adapt.StateDrifting
	HealthQuarantined = adapt.StateQuarantined
)

// Re-exported supervised link lifecycle states.
const (
	LinkUnsupervised = adapt.LifecycleUnsupervised
	LinkLive         = adapt.LifecycleLive
	LinkStale        = adapt.LifecycleStale
	LinkDown         = adapt.LifecycleDown
	LinkRecovering   = adapt.LifecycleRecovering
)

// Drift presets for simulated links (see internal/scenario).
var (
	// NoDrift is the control preset: capture impairments only.
	NoDrift = scenario.NoDrift
	// GainWalkDrift ramps receive gain linearly (dB per minute).
	GainWalkDrift = scenario.GainWalk
	// CFOWalkDrift models temperature-like oscillator drift.
	CFOWalkDrift = scenario.CFOWalk
	// FurnitureMoveDrift is a step change at the given packet.
	FurnitureMoveDrift = scenario.FurnitureMove
	// AmbientSiteDrift is the correlated site-wide preset (gain walk + AGC
	// re-lock step); apply the same preset to every link of a site.
	AmbientSiteDrift = scenario.AmbientDrift
)

// EngineConfig parameterizes a multi-link Engine.
type EngineConfig struct {
	// Workers bounds the calibration and scoring pools (0 = GOMAXPROCS).
	Workers int
	// WindowSize is the monitoring window in packets (0 = 25).
	WindowSize int
	// Fusion is the site-verdict policy (nil = KOfN{K: 1}).
	Fusion FusionPolicy
	// Adaptation enables per-link online adaptation for every link
	// calibrated after it is set (nil = frozen profiles, the pre-PR 3
	// behaviour). EnableAdaptation is the ergonomic setter.
	Adaptation *AdaptationPolicy
	// OnDecision, when non-nil, observes every scored window. It is called
	// from scoring workers and must be safe for concurrent use.
	OnDecision func(linkID string, d Decision)
}

// Engine monitors a fleet of links concurrently: per-link calibration on a
// bounded worker pool, streaming window scoring, optional online
// adaptation, and fused site verdicts — the deployment-scale counterpart of
// the single-link System.
type Engine struct {
	eng      *engine.Engine
	sources  []phasedSwitch
	sourceBy map[string]phasedSwitch

	// Fleet coordination state: the coordinator observes one fused verdict
	// per round of link decisions, driven from the engine's OnDecision
	// callback (shard goroutines — hence the mutex). fleetOn gates the
	// whole path with one atomic load so non-fleet engines keep their
	// decision callbacks uncontended.
	fleetOn      atomic.Bool
	fleetMu      sync.Mutex
	coord        *fleet.Coordinator
	fleetTicks   int
	fleetVerdict SiteVerdict

	// journal is the crash-safe online persistence attached by EnableJournal
	// (nil when journaling is off).
	journal *fleet.Journal

	// Serving-plane state: hub is the lazily-started SSE broadcast hub
	// (Subscribe/Handler/Serve). decided counts scored windows so the
	// OnDecision wrapper can nudge the hub once per fused round (every
	// linkCount decisions) with a single atomic add — subscribers never
	// touch the scoring path beyond that.
	hub       atomic.Pointer[serve.Hub]
	hubOnce   sync.Once
	decided   atomic.Uint64
	linkCount atomic.Int64
}

// phasedSwitch is a source whose occupancy activates once calibration ends.
type phasedSwitch interface{ setMonitoring(bool) }

// NewEngine builds an empty fleet engine.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{sourceBy: make(map[string]phasedSwitch)}
	userCb := cfg.OnDecision
	e.eng = engine.New(engine.Config{
		Workers:    cfg.Workers,
		WindowSize: cfg.WindowSize,
		Fusion:     cfg.Fusion,
		Adaptation: cfg.Adaptation,
		OnDecision: func(linkID string, d Decision) {
			if userCb != nil {
				userCb(linkID, d)
			}
			e.fleetObserve()
			if h := e.hub.Load(); h != nil {
				if n := e.linkCount.Load(); n > 0 && e.decided.Add(1)%uint64(n) == 0 {
					h.Notify()
				}
			}
		},
	})
	return e
}

// EnableFleet turns on cross-link drift coordination: each fused round the
// coordinator classifies the site (quiet / localized / ambient-drift /
// step-change) and drives per-link suppression, baseline relocks and
// staggered online recalibrations through the engine. Requires adaptation
// (EnableAdaptation) for the per-link controls to have anything to act on;
// call before Run. With no argument the default fleet configuration is used.
func (e *Engine) EnableFleet(config ...FleetConfig) error {
	cfg := FleetConfig{}
	if len(config) > 0 {
		cfg = config[0]
	}
	e.fleetMu.Lock()
	defer e.fleetMu.Unlock()
	e.coord = fleet.New(cfg, e.eng)
	e.fleetOn.Store(true)
	return nil
}

// FleetReport returns the fleet coordinator's latest classification and
// action counters; ok is false when EnableFleet was never called.
func (e *Engine) FleetReport() (FleetReport, bool) {
	e.fleetMu.Lock()
	coord := e.coord
	e.fleetMu.Unlock()
	if coord == nil {
		return FleetReport{}, false
	}
	return coord.Report(), true
}

// fleetObserve gives the coordinator one observation per fused round.
func (e *Engine) fleetObserve() {
	if !e.fleetOn.Load() {
		return
	}
	e.fleetMu.Lock()
	defer e.fleetMu.Unlock()
	if e.coord == nil || len(e.sources) == 0 {
		return
	}
	e.fleetTicks++
	if e.fleetTicks%len(e.sources) != 0 {
		return
	}
	// A whole-fleet quarantine or outage surfaces as an Inconclusive
	// verdict (nil error) whose per-link decisions still carry their health
	// evidence — precisely the state the coordinator exists to recover
	// from, so it is observed like any other round. The ErrAllQuarantined
	// tolerance remains for defence in depth against policies fused
	// directly.
	if err := e.eng.VerdictInto(&e.fleetVerdict); err != nil && !errors.Is(err, engine.ErrAllQuarantined) {
		return
	}
	e.coord.Observe(&e.fleetVerdict)
}

// SaveProfiles snapshots every calibrated link's adapted state (profile
// fingerprints, threshold, drift history) into dir — one versioned record
// per link — and returns the IDs written. Call it with the engine stopped; a
// later LoadProfiles on a freshly built engine resumes from the walked
// baselines instead of recalibrating.
func (e *Engine) SaveProfiles(dir string) ([]string, error) {
	saved, err := fleet.Store{Dir: dir}.Save(e.eng)
	if err != nil {
		return saved, fmt.Errorf("mlink save profiles: %w", err)
	}
	return saved, nil
}

// LoadProfiles restores every registered link that has a record in dir and
// returns the restored IDs. Restored links need no calibration — follow with
// CalibrateMissing to capture baselines for just the links that had no
// record. Restored simulated links switch straight to their monitoring
// occupancy.
func (e *Engine) LoadProfiles(dir string) ([]string, error) {
	restored, err := fleet.Store{Dir: dir}.Load(e.eng)
	if err != nil {
		return restored, fmt.Errorf("mlink load profiles: %w", err)
	}
	for _, id := range restored {
		if src, ok := e.sourceBy[id]; ok {
			src.setMonitoring(true)
		}
	}
	return restored, nil
}

// EnableJournal attaches crash-safe online persistence: dir's journal is
// opened (recovering from any previous crash — torn tails are detected and
// truncated), every registered link with journaled state is restored to its
// last synced window, and from the next Run on the engine streams profile
// refreshes, threshold re-derivations and drift state into the journal,
// fsynced on the configured cadence. A daemon killed at any moment resumes
// its walked baselines bit-for-bit with at most SyncEvery of loss.
//
// Returns the IDs restored; follow with CalibrateMissing for links that had
// no journaled state. Call with the engine stopped, and CloseJournal (or
// nothing — a crash is the designed-for case) when done. EnableJournal
// supersedes the manual SaveProfiles/LoadProfiles checkpointing for engines
// that run continuously.
func (e *Engine) EnableJournal(dir string, config ...JournalConfig) ([]string, error) {
	cfg := JournalConfig{}
	if len(config) > 0 {
		cfg = config[0]
	}
	if e.journal != nil {
		return nil, fmt.Errorf("mlink journal: already enabled")
	}
	j, err := fleet.OpenJournal(dir, cfg)
	if err != nil {
		return nil, fmt.Errorf("mlink journal: %w", err)
	}
	restored, err := j.Restore(e.eng)
	if err != nil {
		j.Close()
		return restored, fmt.Errorf("mlink journal: %w", err)
	}
	if err := e.eng.SetJournal(j); err != nil {
		j.Close()
		return restored, fmt.Errorf("mlink journal: %w", err)
	}
	for _, id := range restored {
		if src, ok := e.sourceBy[id]; ok {
			src.setMonitoring(true)
		}
	}
	e.journal = j
	return restored, nil
}

// CloseJournal detaches the journal and compacts it into plain profile
// snapshots — the clean-shutdown path. The engine must be stopped. A no-op
// when no journal is enabled.
func (e *Engine) CloseJournal() error {
	if e.journal == nil {
		return nil
	}
	if err := e.eng.SetJournal(nil); err != nil {
		return fmt.Errorf("mlink journal: %w", err)
	}
	j := e.journal
	e.journal = nil
	if err := j.Close(); err != nil {
		return fmt.Errorf("mlink journal: %w", err)
	}
	return nil
}

// CalibrateMissing calibrates only the links that are not calibrated yet —
// the companion of LoadProfiles for mixed fleets — then switches every
// link's people in for monitoring. A no-op when nothing is missing.
func (e *Engine) CalibrateMissing(n int) error {
	if err := e.eng.CalibrateMissing(context.Background(), n); err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	for _, src := range e.sources {
		src.setMonitoring(true)
	}
	return nil
}

// EnableAdaptation turns on per-link online adaptation (profile refresh,
// threshold re-derivation, drift quarantine) for links calibrated from here
// on. Call it before Calibrate; with no argument the default policy is
// used. Rejected while the engine is running.
func (e *Engine) EnableAdaptation(policy ...AdaptationPolicy) error {
	p := AdaptationPolicy{}
	if len(policy) > 0 {
		p = policy[0]
	}
	if err := e.eng.SetAdaptation(&p); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	return nil
}

// EnableSupervision turns on per-link source supervision for the next Run:
// each link gets a producer goroutine pulling frames from its source into a
// bounded ring, a Live/Stale/Down/Recovering lifecycle with jittered
// exponential-backoff reconnects, and staleness-aware fusion — a stalled or
// dead source degrades that one link's coverage instead of stalling its
// shard siblings. With no argument the default policy is used. Rejected
// while the engine is running; EnableSupervision(SupervisionPolicy{}) after
// a stop reconfigures, and there is no way to un-supervise short of a new
// engine (nor a reason to).
func (e *Engine) EnableSupervision(policy ...SupervisionPolicy) error {
	p := SupervisionPolicy{}
	if len(policy) > 0 {
		p = policy[0]
	}
	if err := e.eng.SetSupervision(&p); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	return nil
}

// AddChaosLink is AddLink with deterministic fault injection wrapped around
// the link's source: stalls, slow drip, mid-stream EOFs, flapping
// reconnects, drop bursts, torn messages — the misbehaviours a supervised
// fleet must degrade through. The returned ChaosSource is unarmed (the link
// behaves normally, including during calibration) until Arm(true). Use with
// EnableSupervision; without it a stalling chaos link stalls its shard, by
// design.
func (e *Engine) AddChaosLink(id string, sys *System, chaos ChaosConfig, people ...*Person) (*ChaosSource, error) {
	if sys == nil {
		return nil, fmt.Errorf("mlink: nil system for link %q", id)
	}
	inner := &phasedSource{
		sys:    sys,
		bodies: bodiesOf(people),
		pool:   csi.NewFramePool(len(sys.extractor.Env.RX.Elements), sys.extractor.Grid.Len()),
	}
	src := scenario.NewChaosSource(inner, chaos)
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return nil, fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, inner)
	e.sourceBy[id] = inner
	e.linkCount.Add(1)
	return src, nil
}

// phasedSource streams simulated captures from a System, with the link's
// people entering the room only once calibration has finished — the §IV-C
// calibration stage is an empty room by definition. Frames are drawn from a
// pool and written via the allocation-free CaptureInto path; the engine
// recycles them after scoring.
type phasedSource struct {
	sys    *System
	bodies []body.Body
	// monitoring is atomic because Recalibrate may flip occupancy from the
	// caller's goroutine while the owning shard is mid-Next (online
	// recalibration during Run).
	monitoring atomic.Bool
	pool       *csi.FramePool
}

func (s *phasedSource) Next() (*Frame, error) {
	bodies := s.bodies
	if !s.monitoring.Load() {
		bodies = nil
	}
	f := s.pool.Get()
	if err := s.sys.extractor.CaptureInto(f, bodies); err != nil {
		s.pool.Put(f)
		return nil, err
	}
	return f, nil
}

// Recycle implements engine.FrameRecycler.
func (s *phasedSource) Recycle(f *Frame) { s.pool.Put(f) }

func (s *phasedSource) setMonitoring(on bool) { s.monitoring.Store(on) }

// phasedDriftSource is phasedSource over a drifting capture stream.
type phasedDriftSource struct {
	stream     *scenario.DriftStream
	bodies     []body.Body
	monitoring atomic.Bool
}

func (s *phasedDriftSource) Next() (*Frame, error) {
	if s.monitoring.Load() {
		s.stream.SetBodies(s.bodies)
	} else {
		s.stream.SetBodies(nil)
	}
	return s.stream.Next()
}

// Recycle implements engine.FrameRecycler.
func (s *phasedDriftSource) Recycle(f *Frame) { s.stream.Recycle(f) }

func (s *phasedDriftSource) setMonitoring(on bool) { s.monitoring.Store(on) }

// AddLink adopts a System as one monitored link under a unique ID. The
// engine owns the system's extractor from here on — don't keep capturing
// through the System concurrently. People, if given, stand in the room for
// every capture after calibration (an occupied link); none means an empty
// room.
func (e *Engine) AddLink(id string, sys *System, people ...*Person) error {
	if sys == nil {
		return fmt.Errorf("mlink: nil system for link %q", id)
	}
	src := &phasedSource{
		sys:    sys,
		bodies: bodiesOf(people),
		pool:   csi.NewFramePool(len(sys.extractor.Env.RX.Elements), sys.extractor.Grid.Len()),
	}
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, src)
	e.sourceBy[id] = src
	e.linkCount.Add(1)
	return nil
}

// AddDriftLink adopts a System as a monitored link whose environment drifts
// per the preset (gain walk, CFO walk, furniture move) — the adversarial
// scenarios EnableAdaptation exists for. People, if given, enter after
// calibration, as in AddLink.
func (e *Engine) AddDriftLink(id string, sys *System, preset DriftPreset, people ...*Person) error {
	if sys == nil {
		return fmt.Errorf("mlink: nil system for link %q", id)
	}
	stream, err := sys.Scenario.NewDriftStream(preset, 1)
	if err != nil {
		return fmt.Errorf("mlink: drift link %q: %w", id, err)
	}
	src := &phasedDriftSource{stream: stream, bodies: bodiesOf(people)}
	if err := e.eng.AddLink(id, sys.cfg, src); err != nil {
		return fmt.Errorf("mlink: %w", err)
	}
	e.sources = append(e.sources, src)
	e.sourceBy[id] = src
	e.linkCount.Add(1)
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string { return e.eng.Links() }

// LinksInto is Links appending into a caller-owned buffer (reset to length
// zero first) — the allocation-free variant for report loops.
func (e *Engine) LinksInto(dst []string) []string { return e.eng.LinksInto(dst) }

// Calibrate calibrates every link in parallel from n empty-room packets
// each (plus n held-out packets for threshold calibration). On success the
// links' people, if any, enter their rooms for subsequent monitoring.
func (e *Engine) Calibrate(n int) error {
	if err := e.eng.Calibrate(context.Background(), n); err != nil {
		return fmt.Errorf("mlink calibrate: %w", err)
	}
	for _, src := range e.sources {
		src.setMonitoring(true)
	}
	return nil
}

// Recalibrate rebuilds one link's profile, threshold and adapter from a
// fresh empty-room capture — the recovery path for a link whose health
// reports NeedsRecalibration. The caller asserts the room is empty again:
// for simulated links the source is switched back to its calibration phase
// (people leave) for the duration, exactly as during Calibrate, and
// re-enters monitoring afterwards.
//
// While Run is active the rebuild happens online, on the shard that owns the
// link: sibling links keep scoring throughout, and the call blocks until the
// link's fresh baseline is in place. (A window or two captured before the
// shard picks the request up may still score with people present — they
// read as ordinary occupied windows, never as calibration data.)
func (e *Engine) Recalibrate(linkID string, n int) error {
	if src, ok := e.sourceBy[linkID]; ok {
		src.setMonitoring(false)
		defer src.setMonitoring(true)
	}
	if err := e.eng.Recalibrate(context.Background(), linkID, n); err != nil {
		return fmt.Errorf("mlink recalibrate: %w", err)
	}
	return nil
}

// Run monitors the fleet until every link has scored windowsPerLink windows
// (0 = until ctx is cancelled or the sources end).
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	if err := e.eng.Run(ctx, windowsPerLink); err != nil {
		return fmt.Errorf("mlink run: %w", err)
	}
	return nil
}

// Verdict fuses the latest per-link decisions into the site verdict. Each
// LinkDecision carries the link's fusion weight and adaptation health.
func (e *Engine) Verdict() (SiteVerdict, error) {
	v, err := e.eng.Verdict()
	if err != nil {
		return SiteVerdict{}, fmt.Errorf("mlink verdict: %w", err)
	}
	return v, nil
}

// VerdictInto is Verdict reusing the caller's SiteVerdict (notably its Links
// slice), so a steady-state report loop fuses the fleet without allocating.
// Safe to call while the engine runs: link state is read from lock-free
// snapshots and never blocks the scoring shards.
func (e *Engine) VerdictInto(v *SiteVerdict) error {
	if err := e.eng.VerdictInto(v); err != nil {
		return fmt.Errorf("mlink verdict: %w", err)
	}
	return nil
}

// Metrics snapshots fleet-wide and per-link monitoring counters.
func (e *Engine) Metrics() EngineMetrics { return e.eng.Metrics() }

// MetricsInto is Metrics reusing the caller's struct (notably its PerLink
// slice) — the allocation-free variant for report loops.
func (e *Engine) MetricsInto(m *EngineMetrics) { e.eng.MetricsInto(m) }
