package mlink

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/serve"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineStreamSoakChaos soaks the verdict stream under -race over a
// supervised chaos fleet: one stalled subscriber (never drains), one
// slow-drip subscriber (drains occasionally), and several healthy watchers
// share the encode-once hub while the engine scores and one link's source
// misbehaves. The stalled watcher must be shed without slowing anyone; the
// drip survives because draining resets its lag; healthy watchers see
// strictly ordered rounds; and the engine's scoring rate never blocks on
// any of them.
func TestEngineStreamSoakChaos(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
	if err := eng.EnableSupervision(SupervisionPolicy{
		StaleAfter:     50 * time.Millisecond,
		DownAfter:      150 * time.Millisecond,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		HoldLiveFrames: 10,
	}); err != nil {
		t.Fatal(err)
	}
	sysA, err := NewLinkCaseSystem(1, SchemeSubcarrier, 41)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewLinkCaseSystem(2, SchemeSubcarrier, 42)
	if err != nil {
		t.Fatal(err)
	}
	chaosSrc, err := eng.AddChaosLink("flaky", sysA, ChaosConfig{StallAfter: 1, StallFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddLink("steady", sysB); err != nil {
		t.Fatal(err)
	}

	// A dedicated hub so the test controls the shed threshold. MaxLag must
	// separate the two laggards by a wide margin: the drip accrues at most
	// ~25ms/2ms ≈ 13 consecutive drops between drains (publish rate is the
	// notify ticker below), the stalled watcher accrues them forever — so
	// 256 sheds the stall within ~0.5s of rounds while the drip never gets
	// within 10× of the threshold, whatever the scheduler does.
	hub := serve.NewHub(eng, serve.HubOptions{RingDepth: 2, MaxLag: 256})
	defer hub.Close()

	if err := eng.Calibrate(60); err != nil {
		t.Fatal(err)
	}
	hub.Start()

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx, 0) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}()

	// Round driver: nudge the hub as rounds complete. (The facade's
	// Subscribe wires this into OnDecision; here the hub is external so the
	// test controls the shed threshold.)
	notifyCtx, notifyStop := context.WithCancel(context.Background())
	defer notifyStop()
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-notifyCtx.Done():
				return
			case <-tick.C:
				hub.Notify()
			}
		}
	}()

	stalled, err := hub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	drip, err := hub.Subscribe()
	if err != nil {
		t.Fatal(err)
	}

	const healthyN = 4
	var (
		wg       sync.WaitGroup
		healthy  [healthyN]uint64 // frames seen per healthy watcher
		orderErr atomic.Value
	)
	watchCtx, watchCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer watchCancel()
	for i := 0; i < healthyN; i++ {
		sub, err := hub.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, sub *VerdictSubscription) {
			defer wg.Done()
			var last uint64
			for {
				f, err := sub.Next(watchCtx)
				if err != nil {
					return // ErrClosed at hub shutdown ends the watch
				}
				if f.Round() <= last {
					orderErr.Store(fmt.Errorf("watcher %d: round %d after %d", i, f.Round(), last))
					f.Release()
					return
				}
				last = f.Round()
				atomic.AddUint64(&healthy[i], 1)
				f.Release()
			}
		}(i, sub)
	}

	// Slow drip: drains one frame every 25 ms — far behind the round rate,
	// but each drain resets its consecutive-drop count, so it coalesces to
	// the newest round instead of being shed.
	dripStop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-dripStop:
				return
			case <-tick.C:
				if f := drip.TryNext(); f != nil {
					f.Release()
				}
			}
		}
	}()

	// The stalled watcher never drains: after MaxLag consecutive drops the
	// hub sheds it, and nobody else notices.
	waitUntil(t, 20*time.Second, "stalled subscriber shed", func() bool {
		return errors.Is(stalled.Err(), ErrStreamShed)
	})
	if hub.Shed() == 0 {
		t.Fatal("hub shed counter did not advance")
	}

	// Chaos mid-stream: the flaky link stalls, supervision degrades it, and
	// the stream keeps flowing for everyone still draining.
	chaosSrc.Arm(true)
	var v SiteVerdict
	waitUntil(t, 20*time.Second, "degraded coverage over chaos", func() bool {
		return eng.VerdictInto(&v) == nil && v.Coverage.Degraded()
	})
	before := [healthyN]uint64{}
	for i := range before {
		before[i] = atomic.LoadUint64(&healthy[i])
	}
	waitUntil(t, 20*time.Second, "healthy watchers advancing through chaos", func() bool {
		for i := range healthy {
			if atomic.LoadUint64(&healthy[i]) <= before[i]+3 {
				return false
			}
		}
		return true
	})

	// The engine's scoring loop must not have been held back by the stalled
	// or slow subscribers: the steady link keeps retiring windows.
	m := eng.Metrics()
	waitUntil(t, 20*time.Second, "scoring rate holds", func() bool {
		cur := eng.Metrics()
		return cur.WindowsScored > m.WindowsScored
	})

	if err := drip.Err(); err != nil {
		t.Fatalf("slow-drip subscriber was dropped: %v", err)
	}
	if hub.Dropped() == 0 {
		t.Fatal("latest-wins coalescing never dropped a frame for the laggards")
	}

	close(dripStop)
	notifyStop()
	hub.Close()
	wg.Wait()
	if err, ok := orderErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
}

// TestServeAPIAllLinksDown drives the HTTP API end to end with every link's
// source stalled: /v1/verdict must answer 200 with a first-class
// inconclusive document whose coverage counts the outage — never an error
// string — and /metrics keeps serving through the blackout.
func TestServeAPIAllLinksDown(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
	if err := eng.EnableSupervision(SupervisionPolicy{
		StaleAfter:     50 * time.Millisecond,
		DownAfter:      150 * time.Millisecond,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		HoldLiveFrames: 10,
	}); err != nil {
		t.Fatal(err)
	}
	const links = 2
	chaos := make([]*ChaosSource, 0, links)
	for i := 1; i <= links; i++ {
		sys, err := NewLinkCaseSystem(i, SchemeSubcarrier, 50+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		src, err := eng.AddChaosLink(fmt.Sprintf("l%d", i), sys, ChaosConfig{StallAfter: 1, StallFor: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		chaos = append(chaos, src)
	}
	if err := eng.Calibrate(60); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx, 0) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}()
	defer eng.CloseStream()

	// Let every link fuse a first round — a link that never scored has no
	// decision to exclude — then stall the whole fleet.
	var v SiteVerdict
	waitUntil(t, 20*time.Second, "all links fused", func() bool {
		return eng.VerdictInto(&v) == nil && v.Coverage.Links == links && !v.Coverage.Degraded()
	})
	for _, src := range chaos {
		src.Arm(true)
	}
	waitUntil(t, 20*time.Second, "whole fleet down", func() bool {
		return eng.VerdictInto(&v) == nil && v.Inconclusive && v.Coverage.Down == links
	})

	ts := httptest.NewServer(eng.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/verdict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 — an outage is a document, not an error", resp.StatusCode)
	}
	var doc struct {
		Present      bool `json:"present"`
		Inconclusive bool `json:"inconclusive"`
		Coverage     struct {
			Links    int  `json:"links"`
			Fused    int  `json:"fused"`
			Down     int  `json:"down"`
			Degraded bool `json:"degraded"`
		} `json:"coverage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Inconclusive || doc.Present {
		t.Fatalf("verdict doc = %+v, want inconclusive", doc)
	}
	if doc.Coverage.Links != links || doc.Coverage.Down != links || !doc.Coverage.Degraded {
		t.Fatalf("coverage = %+v, want %d/%d links down", doc.Coverage, links, links)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}
}

// TestEngineSubscribeFacade exercises the facade's own stream wiring: the
// first Subscribe lazily starts the hub, the OnDecision hook publishes one
// frame per fused round, and CloseStream ends every subscription cleanly.
func TestEngineSubscribeFacade(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
	sys, err := NewLinkCaseSystem(1, SchemeSubcarrier, 61)
	if err != nil {
		t.Fatal(err)
	}
	mid := sys.Scenario.LinkMidpoint()
	if err := eng.AddLink("solo", sys, &Person{X: mid.X, Y: mid.Y}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Calibrate(60); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.CloseStream()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx, 20) }()

	f, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	var doc struct {
		Present bool `json:"present"`
		Total   int  `json:"total"`
	}
	if jerr := json.Unmarshal(f.JSON(), &doc); jerr != nil {
		t.Fatalf("streamed frame is not a verdict document: %v (%q)", jerr, f.JSON())
	}
	f.Release()
	if doc.Total != 1 {
		t.Fatalf("streamed verdict = %+v, want the solo link's vote", doc)
	}
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	eng.CloseStream()
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Next after CloseStream = %v, want ErrStreamClosed", err)
	}
}
