package mlink

import (
	"context"
	"testing"
	"time"
)

// TestEngineFacadeSupervisedChaos smoke-tests the public supervision
// surface: EnableSupervision + AddChaosLink, a stalled link degrading
// coverage without stalling its siblings, and full recovery after the
// chaos is disarmed.
func TestEngineFacadeSupervisedChaos(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
	if err := eng.EnableSupervision(SupervisionPolicy{
		StaleAfter:     50 * time.Millisecond,
		DownAfter:      150 * time.Millisecond,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		HoldLiveFrames: 10,
	}); err != nil {
		t.Fatal(err)
	}

	sysA, err := NewLinkCaseSystem(1, SchemeSubcarrier, 31)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewLinkCaseSystem(2, SchemeSubcarrier, 32)
	if err != nil {
		t.Fatal(err)
	}
	chaosSrc, err := eng.AddChaosLink("flaky", sysA, ChaosConfig{StallAfter: 1, StallFor: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	mid := sysB.Scenario.LinkMidpoint()
	if err := eng.AddLink("occupied", sysB, &Person{X: mid.X, Y: mid.Y}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Calibrate(60); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx, 0) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}()

	var v SiteVerdict
	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (coverage %+v)", what, v.Coverage)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	wait("both links fused", func() bool {
		return eng.VerdictInto(&v) == nil && !v.Coverage.Degraded() && v.Coverage.Links == 2
	})

	// Stall the flaky link: coverage degrades to 1 of 2 while the occupied
	// sibling keeps the verdict present.
	chaosSrc.Arm(true)
	wait("degraded coverage", func() bool {
		return eng.VerdictInto(&v) == nil && v.Coverage.Degraded()
	})
	if v.Inconclusive || !v.Present {
		t.Fatalf("degraded verdict = present %v inconclusive %v, want the sibling's detection", v.Present, v.Inconclusive)
	}
	if v.Coverage.Fused != 1 {
		t.Fatalf("degraded coverage %+v, want 1 of 2 fused", v.Coverage)
	}

	// Disarm: the stalled producer is released and the link re-enters.
	chaosSrc.Arm(false)
	wait("full coverage restored", func() bool {
		return eng.VerdictInto(&v) == nil && !v.Coverage.Degraded()
	})

	m := eng.Metrics()
	for _, lm := range m.PerLink {
		if lm.ID == "flaky" && lm.Lifecycle != LinkLive {
			t.Fatalf("flaky link lifecycle %v after recovery, want live", lm.Lifecycle)
		}
	}
}
